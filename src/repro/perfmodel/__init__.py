"""Hardware performance model for the pyGinkgo reproduction.

The original paper benchmarks on NVIDIA A100 and AMD Instinct MI100 GPUs and
Intel Xeon Platinum 8368 CPUs.  None of that hardware is available in this
environment, so every executor in :mod:`repro.ginkgo` carries a *simulated
clock* driven by the roofline model defined here.  Numerical results are
always computed for real with NumPy/SciPy; only the *reported execution time*
comes from this model.

The model has four ingredients:

* :class:`~repro.perfmodel.specs.DeviceSpec` — peak memory bandwidth, peak
  FLOP rates per precision, and kernel-launch latency for each device.
* :class:`~repro.perfmodel.kernels.KernelCost` — per-kernel byte/flop counts
  (CSR/COO/ELL/SELL-P SpMV, BLAS-1 ops, triangular solves, ...).
* :class:`~repro.perfmodel.libraries.LibraryProfile` — per-library efficiency
  factors calibrated against the paper's own measurements (pyGinkgo reaches
  ~150 GFLOP/s fp32 SpMV on the A100, PyTorch ~110, CuPy ~85, TF ~50).
* :class:`~repro.perfmodel.clock.SimClock` — an event-logging virtual clock
  with deterministic measurement noise.

Calibration targets are listed in DESIGN.md; the invariants the model must
satisfy (speedup grows with NNZ, launch latency dominates small problems,
binding overhead amortises to <10% above 1e7 nonzeros, ...) are covered by
``tests/perfmodel``.
"""

from repro.perfmodel.clock import KernelEvent, SimClock
from repro.perfmodel.comm import (
    DEFAULT_NETWORK,
    ETHERNET_CLUSTER,
    INFINIBAND_HDR,
    INTRA_NODE,
    CommRequest,
    NetworkSpec,
    allreduce_time,
    halo_exchange_time,
    p2p_time,
)
from repro.perfmodel.kernels import (
    KernelCost,
    blas1_cost,
    conversion_cost,
    dot_cost,
    factorization_cost,
    fused_axpby_cost,
    fused_spmv_axpby_cost,
    spmv_cost,
    trsv_cost,
)
from repro.perfmodel.libraries import (
    LIBRARY_PROFILES,
    LibraryProfile,
    get_library_profile,
)
from repro.perfmodel.noise import NoiseModel
from repro.perfmodel.overhead import BindingOverheadModel
from repro.perfmodel.specs import (
    AMD_MI100,
    DEVICE_SPECS,
    GENERIC_HOST,
    INTEL_XEON_8368,
    NVIDIA_A100,
    DeviceSpec,
    get_device_spec,
)
from repro.perfmodel.threads import thread_scaling
from repro.perfmodel.trace import AttributionTable, Span, Trace

__all__ = [
    "AMD_MI100",
    "AttributionTable",
    "BindingOverheadModel",
    "DEFAULT_NETWORK",
    "DEVICE_SPECS",
    "DeviceSpec",
    "GENERIC_HOST",
    "INFINIBAND_HDR",
    "INTEL_XEON_8368",
    "INTRA_NODE",
    "CommRequest",
    "ETHERNET_CLUSTER",
    "KernelCost",
    "KernelEvent",
    "LIBRARY_PROFILES",
    "LibraryProfile",
    "NVIDIA_A100",
    "NetworkSpec",
    "NoiseModel",
    "SimClock",
    "Span",
    "Trace",
    "allreduce_time",
    "blas1_cost",
    "conversion_cost",
    "dot_cost",
    "factorization_cost",
    "fused_axpby_cost",
    "fused_spmv_axpby_cost",
    "get_device_spec",
    "get_library_profile",
    "halo_exchange_time",
    "p2p_time",
    "spmv_cost",
    "thread_scaling",
    "trsv_cost",
]
