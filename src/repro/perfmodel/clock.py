"""Simulated device clock.

Each executor owns a :class:`SimClock` parameterised by a device spec and a
library profile.  Kernels report their abstract :class:`KernelCost`; the
clock converts the cost to seconds with the roofline formula, applies
deterministic measurement noise, advances virtual time, and logs the event.

Benchmark harnesses read time spans off the clock exactly like they would
call ``time.perf_counter()`` around a real kernel.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

from repro.perfmodel.kernels import KernelCost
from repro.perfmodel.libraries import LibraryProfile, get_library_profile
from repro.perfmodel.noise import NoiseModel
from repro.perfmodel.specs import DeviceSpec


@dataclass(frozen=True)
class KernelEvent:
    """One executed kernel as recorded by the clock."""

    name: str
    start: float
    duration: float
    flops: float
    bytes: float
    launches: int

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def gflops(self) -> float:
        """Achieved GFLOP/s of this event (0 for pure data movement).

        Zero-duration events that still performed work (fused/free
        kernels) report ``inf`` instead of silently returning 0, so
        aggregated tables can guard them rather than under-report.
        """
        if self.flops <= 0.0:
            return 0.0
        if self.duration <= 0.0:
            return float("inf")
        return self.flops / self.duration / 1e9


class SimClock:
    """Virtual clock that accumulates modeled kernel times.

    Args:
        spec: The device the kernels run on.
        library: Library profile name or instance; defaults to ``ginkgo``.
        num_threads: CPU thread count used for bandwidth scaling (ignored
            for GPUs).
        seed: Seed for the deterministic noise model.
        noisy: Disable to make timings exactly reproducible analytic values
            (used by unit tests).

    Besides event logging, the clock supports *tracers*: observers
    (typically a :class:`~repro.ginkgo.log.ProfilerHook`) notified of
    every time advance, structural span push/pop, and annotation.
    Tracers implement any subset of ``on_clock_event(clock, category,
    name, start, duration, meta)``, ``on_span_push(clock, name, category,
    meta)``, ``on_span_pop(clock, meta)``, and ``on_clock_mark(clock,
    name, meta)``.  Tracers registered globally (on the class) observe
    every clock, including ones created after registration.
    """

    #: Tracers observing *all* clocks (see :meth:`add_global_tracer`).
    _global_tracers: list = []

    def __init__(
        self,
        spec: DeviceSpec,
        library: str | LibraryProfile = "ginkgo",
        num_threads: int | None = None,
        seed: int = 0,
        noisy: bool = True,
    ) -> None:
        self.spec = spec
        self.library = (
            library
            if isinstance(library, LibraryProfile)
            else get_library_profile(library)
        )
        self.num_threads = num_threads
        self.noise = NoiseModel(spec.noise_sigma if noisy else 0.0, seed=seed)
        self.now = 0.0
        self.events: list[KernelEvent] = []
        self.kernel_count = 0
        self.bytes_moved = 0.0
        self.flops_done = 0.0
        self._log_events = False
        self._tracers: list = []

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def enable_event_log(self, enabled: bool = True) -> None:
        """Record individual :class:`KernelEvent` objects (off by default)."""
        self._log_events = enabled

    # ------------------------------------------------------------------
    # tracing
    # ------------------------------------------------------------------
    def add_tracer(self, tracer) -> None:
        """Attach a tracer observing this clock's events and spans."""
        self._tracers.append(tracer)

    def remove_tracer(self, tracer) -> None:
        self._tracers.remove(tracer)

    @classmethod
    def add_global_tracer(cls, tracer) -> None:
        """Attach a tracer observing every clock (existing and future)."""
        cls._global_tracers.append(tracer)

    @classmethod
    def remove_global_tracer(cls, tracer) -> None:
        cls._global_tracers.remove(tracer)

    @property
    def _traced(self) -> bool:
        return bool(self._tracers or SimClock._global_tracers)

    def is_traced_by(self, tracer) -> bool:
        """Whether ``tracer`` currently observes this clock."""
        return tracer in self._tracers or tracer in SimClock._global_tracers

    def _notify(self, method: str, *args) -> None:
        for tracer in self._tracers:
            handler = getattr(tracer, method, None)
            if handler is not None:
                handler(self, *args)
        for tracer in SimClock._global_tracers:
            handler = getattr(tracer, method, None)
            if handler is not None:
                handler(self, *args)

    def push_span(self, name: str, category: str = "region", **meta) -> None:
        """Open a structural span (no-op without tracers)."""
        if self._traced:
            self._notify("on_span_push", name, category, meta)

    def pop_span(self, **meta) -> None:
        """Close the innermost structural span (no-op without tracers)."""
        if self._traced:
            self._notify("on_span_pop", meta)

    def annotate(self, name: str, **meta) -> None:
        """Emit an instant marker at the current time (no-op untraced)."""
        if self._traced:
            self._notify("on_clock_mark", name, meta)

    def reset(self) -> None:
        """Zero the clock and counters and restart the noise sequence."""
        self.now = 0.0
        self.events.clear()
        self.kernel_count = 0
        self.bytes_moved = 0.0
        self.flops_done = 0.0
        self.noise.reset()

    # ------------------------------------------------------------------
    # modelling
    # ------------------------------------------------------------------
    def kernel_time(self, cost: KernelCost) -> float:
        """Noise-free modeled execution time of one kernel, in seconds."""
        bandwidth = self.spec.effective_bandwidth(self.num_threads)
        bandwidth *= self.library.efficiency(self.spec.kind, cost.dtype_name)
        peak = self.spec.peak_flops_for(cost.dtype_name)
        region_factor = 1.0
        if self.spec.kind == "cpu" and self.library.parallel_cpu:
            threads = self.num_threads or self.spec.cores
            from repro.perfmodel.threads import (
                omp_region_factor,
                parallel_efficiency,
            )

            peak *= threads / self.spec.cores
            peak *= parallel_efficiency(
                threads, self.library.cpu_serial_fraction
            )
            # Each kernel launch opens a parallel region; waking and
            # joining the thread team costs more for larger teams.
            region_factor = omp_region_factor(threads)
        elif self.spec.kind == "cpu":
            # Single-threaded library: one core's share of the socket.
            peak /= self.spec.cores
            bandwidth = self.spec.effective_bandwidth(1) * self.library.efficiency(
                self.spec.kind, cost.dtype_name
            )
        launches = cost.launches * self.library.launch_multiplier
        fixed = launches * self.spec.launch_latency * region_factor
        fixed += self.library.host_overhead_per_op
        streaming = cost.bytes / bandwidth if bandwidth > 0 else 0.0
        compute = cost.flops / peak if peak > 0 else 0.0
        return fixed + max(streaming, compute)

    def record(self, cost: KernelCost) -> float:
        """Execute one kernel on the virtual timeline; return its duration."""
        duration = self.kernel_time(cost) * self.noise.sample()
        start = self.now
        if self._log_events:
            self.events.append(
                KernelEvent(
                    name=cost.name,
                    start=start,
                    duration=duration,
                    flops=cost.flops,
                    bytes=cost.bytes,
                    launches=cost.launches,
                )
            )
        self.now += duration
        self.kernel_count += cost.launches
        self.bytes_moved += cost.bytes
        self.flops_done += cost.flops
        if self._traced:
            self._notify(
                "on_clock_event",
                "kernel",
                cost.name,
                start,
                duration,
                {
                    "flops": cost.flops,
                    "bytes": cost.bytes,
                    "launches": cost.launches,
                },
            )
        return duration

    def record_partitioned(self, cost: KernelCost, parts: list) -> float:
        """Record one kernel whose physical execution ran on a thread pool.

        The simulated timeline is the *same* as one :meth:`record` call —
        identical duration, counters, and noise-stream position, so host
        threading never perturbs modeled timings — but tracers see the
        kernel split into one sub-event per partition, wrapped in
        per-thread spans, so ``pg.profile()`` attributes work per thread.

        Args:
            cost: Aggregate cost of the whole partitioned kernel.
            parts: One dict per partition.  An optional ``"weight"`` key
                sets the partition's share of the duration (default:
                equal shares); remaining keys land in the trace metadata.

        Returns:
            The total simulated duration.
        """
        if len(parts) <= 1 or not self._traced:
            return self.record(cost)
        duration = self.kernel_time(cost) * self.noise.sample()
        start = self.now
        if self._log_events:
            self.events.append(
                KernelEvent(
                    name=cost.name,
                    start=start,
                    duration=duration,
                    flops=cost.flops,
                    bytes=cost.bytes,
                    launches=cost.launches,
                )
            )
        self.kernel_count += cost.launches
        self.bytes_moved += cost.bytes
        self.flops_done += cost.flops
        weights = [float(part.get("weight", 1.0)) for part in parts]
        total_weight = sum(weights) or float(len(parts))
        self._notify(
            "on_span_push",
            f"{cost.name}[omp]",
            "kernel",
            {"partitions": len(parts)},
        )
        remaining = duration
        for index, (part, weight) in enumerate(zip(parts, weights)):
            if index == len(parts) - 1:
                share = remaining  # exact remainder: shares tile `duration`
            else:
                share = duration * (weight / total_weight)
            remaining -= share
            fraction = weight / total_weight
            meta = {k: v for k, v in part.items() if k != "weight"}
            meta.update(
                {
                    "thread": index,
                    "flops": cost.flops * fraction,
                    "bytes": cost.bytes * fraction,
                    # All launches accounted on thread 0 so aggregated
                    # counters match the unpartitioned recording.
                    "launches": cost.launches if index == 0 else 0,
                }
            )
            self._notify(
                "on_span_push", f"{cost.name}[t{index}]", "thread",
                {"thread": index},
            )
            self._notify(
                "on_clock_event", "kernel", f"{cost.name}[t{index}]",
                self.now, share, meta,
            )
            self.now += share
            self._notify("on_span_pop", {})
        # Shares tile `duration` exactly, but sum in a different order
        # than one addition; pin the aggregate advance bitwise.
        self.now = start + duration
        self._notify("on_span_pop", {})
        return duration

    def advance(
        self,
        seconds: float,
        category: str = "host",
        label: str | None = None,
        **meta,
    ) -> None:
        """Advance virtual time by a raw amount (host-side overheads).

        Args:
            seconds: Simulated time to add.
            category: Attribution category of the elapsed time
                (``binding``/``stall``/``transfer``/``host``).
            label: Event name shown in traces; defaults to the category.
            **meta: Extra scalar metadata recorded on the trace event.
        """
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds} s")
        start = self.now
        self.now += seconds
        if self._traced:
            self._notify(
                "on_clock_event", category, label or category, start,
                seconds, meta,
            )

    def synchronize(self) -> None:
        """Model a host-device synchronisation point."""
        self.advance(
            self.library.sync_overhead * self.noise.sample(),
            category="stall",
            label="synchronize",
        )

    # ------------------------------------------------------------------
    # measurement helpers
    # ------------------------------------------------------------------
    @contextmanager
    def region(self):
        """Context manager yielding a mutable holder of the elapsed time.

        Usage::

            with clock.region() as span:
                op.apply(b, x)
            print(span.elapsed)
        """

        class _Span:
            elapsed = 0.0

        span = _Span()
        start = self.now
        try:
            yield span
        finally:
            span.elapsed = self.now - start
