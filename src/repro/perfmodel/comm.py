"""Simulated network model for the distributed subsystem.

Ginkgo's ``gko::experimental::distributed`` module runs on MPI; this
reproduction simulates the communication layer the same way it simulates
device kernels: numerics are computed for real (in one address space),
while every exchange charges a modeled latency/bandwidth cost on the
executor's :class:`~repro.perfmodel.clock.SimClock` under the ``comm``
category.

The model is the classic alpha-beta (Hockney) one:

    time(message) = alpha + nbytes / beta

with an intra-node interconnect as the default (the environment has no
real network, just as it has no real A100).  Collectives follow the
standard tree/butterfly schedules:

* ``all_reduce`` — ``ceil(log2 K)`` rounds of a (latency + payload) step,
  the recursive-doubling schedule MPI implementations use for the small
  payloads Krylov dot products produce;
* halo exchanges — per-neighbour point-to-point messages whose payloads
  overlap, so the cost is one latency per message plus the aggregate
  payload over the link bandwidth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkSpec:
    """Latency/bandwidth description of the simulated interconnect.

    Attributes:
        name: Human-readable interconnect name.
        latency: Per-message one-way latency in seconds (alpha).
        bandwidth: Link bandwidth in bytes/second (beta).
    """

    name: str
    latency: float
    bandwidth: float

    def message_time(self, nbytes: float) -> float:
        """Alpha-beta time of one point-to-point message."""
        return self.latency + float(nbytes) / self.bandwidth


#: Shared-memory transport between ranks on one node (the default: the
#: simulated ranks are thread-parallel partitions of one address space).
INTRA_NODE = NetworkSpec(name="intra_node", latency=0.4e-6, bandwidth=40e9)

#: 100 Gb/s-class fabric between nodes (for what-if experiments).
INFINIBAND_HDR = NetworkSpec(name="infiniband_hdr", latency=1.2e-6, bandwidth=12.5e9)

#: Network used when callers do not pass one explicitly.
DEFAULT_NETWORK = INTRA_NODE


def p2p_time(nbytes: float, network: NetworkSpec = DEFAULT_NETWORK) -> float:
    """Time of one point-to-point message of ``nbytes``."""
    if nbytes < 0:
        raise ValueError(f"message size must be non-negative, got {nbytes}")
    return network.message_time(nbytes)


def allreduce_time(
    nbytes: float, num_ranks: int, network: NetworkSpec = DEFAULT_NETWORK
) -> float:
    """Time of one all-reduce of an ``nbytes`` payload over ``num_ranks``.

    Recursive doubling: ``ceil(log2 K)`` rounds, each moving the full
    (small) payload.  Zero for a single rank — no communication happens.
    """
    if nbytes < 0:
        raise ValueError(f"payload size must be non-negative, got {nbytes}")
    if num_ranks < 1:
        raise ValueError(f"num_ranks must be >= 1, got {num_ranks}")
    if num_ranks == 1:
        return 0.0
    rounds = math.ceil(math.log2(num_ranks))
    return rounds * network.message_time(nbytes)


def halo_exchange_time(
    nbytes: float, num_messages: int, network: NetworkSpec = DEFAULT_NETWORK
) -> float:
    """Time of one halo exchange: ``num_messages`` concurrent messages.

    Neighbour exchanges overlap on the fabric, so the model charges one
    latency per message (they are issued back to back from the host) plus
    the aggregate payload once through the link bandwidth.
    """
    if nbytes < 0:
        raise ValueError(f"payload size must be non-negative, got {nbytes}")
    if num_messages < 0:
        raise ValueError(f"num_messages must be >= 0, got {num_messages}")
    if num_messages == 0:
        return 0.0
    return num_messages * network.latency + float(nbytes) / network.bandwidth
