"""Simulated network model for the distributed subsystem.

Ginkgo's ``gko::experimental::distributed`` module runs on MPI; this
reproduction simulates the communication layer the same way it simulates
device kernels: numerics are computed for real (in one address space),
while every exchange charges a modeled latency/bandwidth cost on the
executor's :class:`~repro.perfmodel.clock.SimClock` under the ``comm``
category.

The model is the classic alpha-beta (Hockney) one:

    time(message) = alpha + nbytes / beta

with an intra-node interconnect as the default (the environment has no
real network, just as it has no real A100).  Collectives follow the
standard tree/butterfly schedules:

* ``all_reduce`` — ``ceil(log2 K)`` rounds of a (latency + payload) step,
  the recursive-doubling schedule MPI implementations use for the small
  payloads Krylov dot products produce;
* halo exchanges — per-neighbour point-to-point messages whose payloads
  overlap, so the cost is one latency per message plus the aggregate
  payload over the link bandwidth.

Non-blocking exchanges
----------------------
:class:`CommRequest` models MPI's ``Isend``/``Irecv``/``Iallreduce``
handles on the :class:`~repro.perfmodel.clock.SimClock`: posting records
the clock position, any simulated time that elapses before :meth:`wait`
(rank-local kernels, other exchanges) progresses the transfer for free,
and the wait charges only the *uncovered* remainder under the ``comm``
category.  The total timeline cost of an overlapped exchange is therefore
``max(comm_time, overlapped_compute_time)`` — Ginkgo's distributed SpMV
schedule, where the local block multiplies while the halo is on the wire.
The covered portion is surfaced as a ``comm_hidden`` trace annotation so
attribution can report how much communication the compute hid.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkSpec:
    """Latency/bandwidth description of the simulated interconnect.

    Attributes:
        name: Human-readable interconnect name.
        latency: Per-message one-way latency in seconds (alpha).
        bandwidth: Link bandwidth in bytes/second (beta).
    """

    name: str
    latency: float
    bandwidth: float

    def message_time(self, nbytes: float) -> float:
        """Alpha-beta time of one point-to-point message."""
        return self.latency + float(nbytes) / self.bandwidth


#: Shared-memory transport between ranks on one node (the default: the
#: simulated ranks are thread-parallel partitions of one address space).
INTRA_NODE = NetworkSpec(name="intra_node", latency=0.4e-6, bandwidth=40e9)

#: 100 Gb/s-class fabric between nodes (for what-if experiments).
INFINIBAND_HDR = NetworkSpec(name="infiniband_hdr", latency=1.2e-6, bandwidth=12.5e9)

#: Commodity-cluster Ethernet (10GbE through the TCP stack): the
#: high-latency regime where collectives dominate Krylov solves and
#: overlap/pipelining pay off (bench_overlap).
ETHERNET_CLUSTER = NetworkSpec(
    name="ethernet_cluster", latency=80e-6, bandwidth=1.25e9
)

#: Network used when callers do not pass one explicitly.
DEFAULT_NETWORK = INTRA_NODE


def p2p_time(nbytes: float, network: NetworkSpec = DEFAULT_NETWORK) -> float:
    """Time of one point-to-point message of ``nbytes``."""
    if nbytes < 0:
        raise ValueError(f"message size must be non-negative, got {nbytes}")
    return network.message_time(nbytes)


def allreduce_time(
    nbytes: float, num_ranks: int, network: NetworkSpec = DEFAULT_NETWORK
) -> float:
    """Time of one all-reduce of an ``nbytes`` payload over ``num_ranks``.

    Recursive doubling: ``ceil(log2 K)`` rounds, each moving the full
    (small) payload.  Zero for a single rank — no communication happens.
    """
    if nbytes < 0:
        raise ValueError(f"payload size must be non-negative, got {nbytes}")
    if num_ranks < 1:
        raise ValueError(f"num_ranks must be >= 1, got {num_ranks}")
    if num_ranks == 1:
        return 0.0
    rounds = math.ceil(math.log2(num_ranks))
    return rounds * network.message_time(nbytes)


def halo_exchange_time(
    nbytes: float, num_messages: int, network: NetworkSpec = DEFAULT_NETWORK
) -> float:
    """Time of one halo exchange: ``num_messages`` concurrent messages.

    Neighbour exchanges overlap on the fabric, so the model charges one
    latency per message (they are issued back to back from the host) plus
    the aggregate payload once through the link bandwidth.
    """
    if nbytes < 0:
        raise ValueError(f"payload size must be non-negative, got {nbytes}")
    if num_messages < 0:
        raise ValueError(f"num_messages must be >= 0, got {num_messages}")
    if num_messages == 0:
        return 0.0
    return num_messages * network.latency + float(nbytes) / network.bandwidth


class CommRequest:
    """One in-flight non-blocking exchange posted on a :class:`SimClock`.

    Posting snapshots the clock; compute recorded between post and
    :meth:`wait` progresses the transfer for free, so the wait charges
    only ``max(0, seconds - elapsed)`` under the ``comm`` category.  The
    net timeline cost is ``max(comm_time, overlapped_compute_time)``.
    Concurrent requests each progress against the same elapsed window —
    transfers genuinely share the wire with each other and with compute.

    Args:
        clock: The simulated clock the exchange lives on.
        seconds: Modeled blocking duration of the exchange.
        label: Event name charged at wait time and used in annotations.
        **meta: Extra scalar metadata recorded on the wait's trace event.
    """

    def __init__(self, clock, seconds: float, label: str, **meta) -> None:
        if seconds < 0:
            raise ValueError(
                f"exchange duration must be non-negative, got {seconds}"
            )
        self._clock = clock
        self.seconds = float(seconds)
        self.label = label
        self._meta = meta
        self.posted_at = clock.now
        #: Whether :meth:`wait` has completed the request.
        self.done = False
        #: Seconds of the transfer covered by overlapped compute (set at
        #: wait time).
        self.hidden = 0.0
        #: Seconds charged to the timeline at wait time.
        self.exposed = 0.0

    @property
    def elapsed(self) -> float:
        """Simulated seconds since the request was posted."""
        return self._clock.now - self.posted_at

    def progress(self) -> float:
        """Completed fraction of the transfer at the current clock time."""
        if self.done or self.seconds <= 0.0:
            return 1.0
        return min(1.0, self.elapsed / self.seconds)

    def wait(self) -> float:
        """Complete the request; returns the exposed (charged) seconds.

        Idempotent: a second wait returns the already-charged remainder
        without advancing the clock again (like ``MPI_Wait`` on an
        inactive request).
        """
        if self.done:
            return self.exposed
        self.done = True
        self.hidden = min(self.seconds, max(0.0, self.elapsed))
        self.exposed = self.seconds - self.hidden
        if self.exposed > 0.0:
            self._clock.advance(
                self.exposed, category="comm", label=self.label, **self._meta
            )
        if self.hidden > 0.0:
            self._clock.annotate(
                "comm_hidden",
                label=self.label,
                hidden=self.hidden,
                exposed=self.exposed,
                **self._meta,
            )
        return self.exposed
