"""Roofline cost models for the sparse kernels exercised by the paper.

Every kernel is summarised by three numbers: the floating-point operations
it performs, the bytes it must move through DRAM, and the number of device
kernels it launches.  The simulated execution time is then

    time = launches * launch_latency
         + max(bytes / effective_bandwidth, flops / peak_flops)

evaluated by :meth:`repro.perfmodel.clock.SimClock.record`.  SpMV-class
kernels are overwhelmingly bandwidth-bound, which is what produces the
paper's characteristic speedup-grows-with-NNZ curves: small matrices are
launch-latency bound, large ones bandwidth bound.

The byte counts model a cache-unfriendly gather of the input vector (one
value-sized read per nonzero), matching the measured ~150 GFLOP/s fp32 CSR
SpMV ceiling on the A100 rather than the unreachable pure-streaming bound.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class KernelCost:
    """Abstract cost of one logical operation.

    Attributes:
        name: Kernel identifier, e.g. ``"spmv_csr"``.
        flops: Floating point operations performed.
        bytes: DRAM traffic in bytes.
        launches: Number of device kernels (or parallel regions) launched.
        dtype_name: numpy dtype name of the value type, selects peak FLOPs.
    """

    name: str
    flops: float
    bytes: float
    launches: int = 1
    dtype_name: str = "float64"

    def __add__(self, other: "KernelCost") -> "KernelCost":
        return KernelCost(
            name=f"{self.name}+{other.name}",
            flops=self.flops + other.flops,
            bytes=self.bytes + other.bytes,
            launches=self.launches + other.launches,
            dtype_name=self.dtype_name,
        )

    def scaled(self, factor: float) -> "KernelCost":
        """Return a copy with flops/bytes/launches multiplied by ``factor``."""
        return KernelCost(
            name=self.name,
            flops=self.flops * factor,
            bytes=self.bytes * factor,
            launches=max(1, round(self.launches * factor)),
            dtype_name=self.dtype_name,
        )


#: Fraction of a value-sized read charged per nonzero for gathering x.
GATHER_FRACTION = 1.0

#: Value width in bytes -> numpy dtype name (paper Table 1).
_WIDTH_DTYPE_NAMES = {2: "float16", 4: "float32", 8: "float64"}


def _dtype_name_for_width(value_bytes: int) -> str:
    """The dtype name charged for a value width, with a clear failure.

    Raises:
        ValueError: For widths outside the supported {2, 4, 8} bytes.
    """
    try:
        return _WIDTH_DTYPE_NAMES[value_bytes]
    except KeyError:
        raise ValueError(
            f"unsupported value width {value_bytes!r} bytes; supported "
            f"widths: {sorted(_WIDTH_DTYPE_NAMES)} "
            f"({', '.join(_WIDTH_DTYPE_NAMES[w] for w in sorted(_WIDTH_DTYPE_NAMES))})"
        ) from None


def spmv_cost(
    fmt: str,
    num_rows: int,
    num_cols: int,
    nnz: int,
    value_bytes: int,
    index_bytes: int,
    num_rhs: int = 1,
    strategy: str = "classical",
) -> KernelCost:
    """Cost of one sparse matrix (multi-)vector product.

    Args:
        fmt: Storage format: ``csr``, ``coo``, ``ell``, ``sellp``,
            ``hybrid``, ``sparsity_csr``, ``dense``, or ``diagonal``.
        num_rows: Matrix rows.
        num_cols: Matrix columns.
        nnz: Stored nonzeros.
        value_bytes: Bytes per value (2/4/8).
        index_bytes: Bytes per index (4/8).
        num_rhs: Number of right-hand-side columns.
        strategy: CSR kernel strategy (``classical`` launches one kernel,
            ``load_balance`` launches an extra partitioning kernel but moves
            the same data more evenly).

    Returns:
        The aggregate :class:`KernelCost`.
    """
    if num_rows < 0 or num_cols < 0 or nnz < 0 or num_rhs < 1:
        raise ValueError("matrix dimensions and nnz must be non-negative")
    dtype_name = _dtype_name_for_width(value_bytes)
    flops = 2.0 * nnz * num_rhs
    gather = GATHER_FRACTION * nnz * value_bytes * num_rhs
    out = num_rows * value_bytes * num_rhs
    launches = 1

    if fmt == "csr":
        data = nnz * (value_bytes + index_bytes) + (num_rows + 1) * index_bytes
        if strategy == "load_balance":
            launches = 2
            data += num_rows * index_bytes  # srow/partition metadata
        elif strategy not in ("classical", "sparselib", "merge_path"):
            raise ValueError(f"unknown CSR strategy {strategy!r}")
        if strategy == "merge_path":
            launches = 2
    elif fmt == "coo":
        data = nnz * (value_bytes + 2 * index_bytes)
        # Atomic accumulation re-reads/re-writes output segments.
        out *= 2.0
    elif fmt == "ell":
        max_per_row = nnz / max(num_rows, 1)
        stored = num_rows * max(1, int(round(max_per_row)))
        data = stored * (value_bytes + index_bytes)
    elif fmt == "sellp":
        data = nnz * (value_bytes + index_bytes) * 1.05  # slice padding
        data += (num_rows // 32 + 1) * 2 * index_bytes
    elif fmt == "hybrid":
        data = nnz * (value_bytes + 1.5 * index_bytes)
        launches = 2
    elif fmt == "sparsity_csr":
        data = nnz * index_bytes + (num_rows + 1) * index_bytes
    elif fmt == "dense":
        data = float(num_rows) * num_cols * value_bytes
        flops = 2.0 * num_rows * num_cols * num_rhs
        gather = num_cols * value_bytes * num_rhs
    elif fmt == "diagonal":
        data = min(num_rows, num_cols) * value_bytes
        flops = float(min(num_rows, num_cols)) * num_rhs
        gather = min(num_rows, num_cols) * value_bytes * num_rhs
    else:
        raise ValueError(f"unknown SpMV format {fmt!r}")

    return KernelCost(
        name=f"spmv_{fmt}",
        flops=flops,
        bytes=data + gather + out,
        launches=launches,
        dtype_name=dtype_name,
    )


def blas1_cost(
    name: str, length: int, value_bytes: int, num_vectors: int = 2
) -> KernelCost:
    """Cost of a streaming vector kernel (axpy, scale, copy, fill, ...).

    ``num_vectors`` counts the vector-length operands read or written; an
    ``axpy`` touches three (read x, read y, write y -> modelled as 3).
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    dtype_name = _dtype_name_for_width(value_bytes)
    return KernelCost(
        name=name,
        flops=float(length) * max(1, num_vectors - 1),
        bytes=float(length) * value_bytes * num_vectors,
        launches=1,
        dtype_name=dtype_name,
    )


def fused_axpby_cost(
    length: int,
    value_bytes: int,
    num_inputs: int,
    flops_per_element: int,
) -> KernelCost:
    """Cost of one fused elementwise chain (axpy/scal/axpby compositions).

    A lazy-evaluation flush collapses a chain of scale/add expression
    nodes into a single streaming kernel: every distinct input vector is
    read once, the result is written once, and all intermediate traffic
    (the clones and temporaries the eager chain would stream through
    DRAM) disappears.  ``flops_per_element`` counts the multiplies and
    adds the chain performs per element — the arithmetic is identical to
    the eager chain; only the memory traffic and launch count shrink.
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    if num_inputs < 1:
        raise ValueError("a fused chain reads at least one input vector")
    dtype_name = _dtype_name_for_width(value_bytes)
    return KernelCost(
        name="fused_axpby",
        flops=float(length) * max(1, flops_per_element),
        bytes=float(length) * value_bytes * (num_inputs + 1),
        launches=1,
        dtype_name=dtype_name,
    )


def fused_spmv_axpby_cost(
    spmv: KernelCost,
    length: int,
    value_bytes: int,
    extra_inputs: int,
    flops_per_element: int,
) -> KernelCost:
    """Fold an elementwise tail into the SpMV that produces its input.

    Models Ginkgo's fused SpMV+axpy kernels (``apply_advanced`` and the
    solver step kernels): the product never round-trips through DRAM —
    the tail consumes it in registers — so relative to ``spmv`` the fused
    kernel only adds one read per *extra* tail input plus the tail's
    flops.  Launch count is unchanged; the SpMV's output write already
    covers the result store.
    """
    if length < 0 or extra_inputs < 0:
        raise ValueError("length and extra_inputs must be non-negative")
    return KernelCost(
        name=f"fused_{spmv.name}_axpby",
        flops=spmv.flops + float(length) * max(0, flops_per_element),
        bytes=spmv.bytes + float(length) * value_bytes * extra_inputs,
        launches=spmv.launches,
        dtype_name=spmv.dtype_name,
    )


def dot_cost(length: int, value_bytes: int, num_rhs: int = 1) -> KernelCost:
    """Cost of a dot product / norm reduction (two launches: map + reduce)."""
    if length < 0:
        raise ValueError("length must be non-negative")
    dtype_name = _dtype_name_for_width(value_bytes)
    return KernelCost(
        name="dot",
        flops=2.0 * length * num_rhs,
        bytes=2.0 * length * value_bytes * num_rhs,
        launches=2,
        dtype_name=dtype_name,
    )


def trsv_cost(
    num_rows: int, nnz: int, value_bytes: int, index_bytes: int
) -> KernelCost:
    """Cost of one sparse triangular solve.

    Triangular solves expose little parallelism (level-scheduling), which we
    model as extra launches proportional to the level count ~ sqrt(rows).
    """
    if num_rows < 0 or nnz < 0:
        raise ValueError("dimensions must be non-negative")
    dtype_name = _dtype_name_for_width(value_bytes)
    levels = max(1, int(num_rows**0.5) // 8)
    return KernelCost(
        name="trsv",
        flops=2.0 * nnz,
        bytes=nnz * (value_bytes + index_bytes) + 2.0 * num_rows * value_bytes,
        launches=levels,
        dtype_name=dtype_name,
    )


def factorization_cost(
    kind: str, num_rows: int, nnz: int, value_bytes: int, index_bytes: int
) -> KernelCost:
    """Cost of generating a factorisation/preconditioner (ILU0, IC0, Jacobi)."""
    dtype_name = _dtype_name_for_width(value_bytes)
    if kind in ("ilu0", "ic0"):
        sweep = nnz * (value_bytes + index_bytes) * 4.0
        return KernelCost(
            name=f"generate_{kind}",
            flops=8.0 * nnz,
            bytes=sweep,
            launches=8,
            dtype_name=dtype_name,
        )
    if kind == "jacobi":
        return KernelCost(
            name="generate_jacobi",
            flops=float(num_rows),
            bytes=nnz * (value_bytes + index_bytes) + num_rows * value_bytes,
            launches=2,
            dtype_name=dtype_name,
        )
    raise ValueError(f"unknown factorization kind {kind!r}")


def conversion_cost(
    src_fmt: str,
    dst_fmt: str,
    num_rows: int,
    nnz: int,
    value_bytes: int,
    index_bytes: int,
) -> KernelCost:
    """Cost of converting between storage formats (read src + write dst)."""
    dtype_name = _dtype_name_for_width(value_bytes)
    per_nnz = value_bytes + 2 * index_bytes
    return KernelCost(
        name=f"convert_{src_fmt}_to_{dst_fmt}",
        flops=0.0,
        bytes=2.0 * (nnz * per_nnz + num_rows * index_bytes),
        launches=2,
        dtype_name=dtype_name,
    )
