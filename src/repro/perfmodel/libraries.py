"""Per-library efficiency profiles.

The paper benchmarks five software stacks (pyGinkgo/Ginkgo, CuPy, PyTorch,
TensorFlow, SciPy).  All of them run the same bandwidth-bound kernels; what
separates them is (a) how close their kernels come to the device's sustained
bandwidth, (b) how many device kernels they launch per logical operation
(framework dispatch granularity / kernel fusion), and (c) how much host-side
Python overhead each dispatched operation carries.

The constants below are calibrated so the simulated benchmarks reproduce the
paper's measured operating points:

* A100 fp32 SpMV peaks: pyGinkgo ~150, PyTorch ~110, CuPy ~85, TF ~50 GFLOP/s
  (paper section 6.1.1);
* SciPy wins single-threaded CPU SpMV but does not scale with threads, while
  pyGinkgo reaches 7-35x over SciPy at 32 threads (section 6.1.2);
* CuPy's Krylov solvers pay per-op Python dispatch and device-host scalar
  synchronisation, giving pyGinkgo ~2.5x (CG) to ~4x (CGS) per-iteration
  advantage that shrinks with NNZ (section 6.2.1);
* CuPy's GMRES is slightly *faster* because Ginkgo checks the residual after
  every Hessenberg update and runs the small triangular solve on the GPU
  (section 6.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class LibraryProfile:
    """Efficiency description of one sparse-linear-algebra stack.

    Attributes:
        name: Library identifier (``ginkgo``, ``cupy``, ``pytorch``,
            ``tensorflow``, ``scipy``).
        bandwidth_efficiency: Achieved fraction of the device's sustained
            bandwidth, keyed by ``(device_kind, dtype_name)``.  Missing keys
            fall back to ``default_bandwidth_efficiency``.
        default_bandwidth_efficiency: Fallback efficiency.
        host_overhead_per_op: Seconds of host-side framework overhead added
            to every dispatched logical operation (Python interpreter,
            dispatcher, allocator).
        sync_overhead: Seconds charged when an operation must synchronise a
            scalar back to the host (e.g. a dot product consumed by Python
            control flow).
        launch_multiplier: Average number of device kernels launched per
            logical kernel, relative to the cost model's ``launches`` field.
            >1 models missing fusion.
        parallel_cpu: Whether the library's CPU kernels use threads at all.
            SciPy's sparse kernels are single-threaded C.
        cpu_serial_fraction: Amdahl serial fraction for CPU kernels of
            libraries that do scale.
        supported_formats: Storage formats the library provides.
        supported_solvers: Iterative solvers the library provides.
    """

    name: str
    bandwidth_efficiency: dict = field(default_factory=dict)
    default_bandwidth_efficiency: float = 0.5
    host_overhead_per_op: float = 0.0
    sync_overhead: float = 0.0
    launch_multiplier: float = 1.0
    parallel_cpu: bool = True
    cpu_serial_fraction: float = 0.02
    supported_formats: tuple = ("csr", "coo")
    supported_solvers: tuple = ()

    def efficiency(self, device_kind: str, dtype_name: str) -> float:
        """Bandwidth efficiency for a device kind and value type."""
        return self.bandwidth_efficiency.get(
            (device_kind, dtype_name), self.default_bandwidth_efficiency
        )


GINKGO = LibraryProfile(
    name="ginkgo",
    bandwidth_efficiency={
        ("gpu", "float32"): 0.77,
        ("gpu", "float64"): 0.80,
        ("gpu", "float16"): 0.70,
        ("cpu", "float32"): 0.85,
        ("cpu", "float64"): 0.85,
        ("cpu", "float16"): 0.60,
    },
    default_bandwidth_efficiency=0.75,
    host_overhead_per_op=0.3e-6,  # C++ driver loop
    sync_overhead=4.0e-6,
    launch_multiplier=1.0,
    parallel_cpu=True,
    cpu_serial_fraction=0.01,
    supported_formats=("csr", "coo", "ell", "sellp", "hybrid", "dense"),
    supported_solvers=(
        "cg",
        "fcg",
        "cgs",
        "bicg",
        "bicgstab",
        "gmres",
        "minres",
        "ir",
    ),
)

CUPY = LibraryProfile(
    name="cupy",
    bandwidth_efficiency={
        ("gpu", "float32"): 0.44,
        ("gpu", "float64"): 0.62,
    },
    default_bandwidth_efficiency=0.44,
    host_overhead_per_op=9.0e-6,  # Python dispatch per cuSPARSE/cuBLAS call
    sync_overhead=14.0e-6,  # cudaMemcpy D2H + stream sync for scalars
    launch_multiplier=1.3,
    parallel_cpu=True,
    cpu_serial_fraction=0.15,
    supported_formats=("csr", "coo"),
    supported_solvers=("cg", "cgs", "gmres", "minres", "lsqr", "lsmr"),
)

PYTORCH = LibraryProfile(
    name="pytorch",
    bandwidth_efficiency={
        ("gpu", "float32"): 0.57,
        ("gpu", "float64"): 0.30,  # fp64 is de-prioritised on purpose
        ("cpu", "float32"): 0.045,
        ("cpu", "float64"): 0.035,
    },
    default_bandwidth_efficiency=0.30,
    host_overhead_per_op=8.0e-6,
    sync_overhead=12.0e-6,
    launch_multiplier=1.5,
    parallel_cpu=True,
    cpu_serial_fraction=0.35,
    supported_formats=("csr", "coo"),
    supported_solvers=(),  # no iterative solvers (paper section 6.2.1)
)

TENSORFLOW = LibraryProfile(
    name="tensorflow",
    bandwidth_efficiency={
        ("gpu", "float32"): 0.30,
        ("gpu", "float64"): 0.18,
        ("cpu", "float32"): 0.022,
        ("cpu", "float64"): 0.018,
    },
    default_bandwidth_efficiency=0.18,
    host_overhead_per_op=22.0e-6,  # graph/eager dispatch is heavyweight
    sync_overhead=25.0e-6,
    launch_multiplier=2.0,
    parallel_cpu=True,
    cpu_serial_fraction=0.40,
    supported_formats=("coo",),  # TF only supports COO (paper section 2)
    supported_solvers=(),
)

SCIPY = LibraryProfile(
    name="scipy",
    bandwidth_efficiency={
        ("cpu", "float32"): 0.90,
        ("cpu", "float64"): 0.90,
    },
    default_bandwidth_efficiency=0.90,
    host_overhead_per_op=1.5e-6,
    sync_overhead=0.0,
    launch_multiplier=1.0,
    parallel_cpu=False,  # single-threaded C kernels; do not scale
    cpu_serial_fraction=1.0,
    supported_formats=("csr", "coo", "csc"),
    supported_solvers=("cg", "cgs", "gmres", "bicgstab", "minres"),
)

LIBRARY_PROFILES = {
    p.name: p for p in (GINKGO, CUPY, PYTORCH, TENSORFLOW, SCIPY)
}


def get_library_profile(name: str) -> LibraryProfile:
    """Look up a :class:`LibraryProfile` by name (case-insensitive)."""
    key = name.lower()
    if key not in LIBRARY_PROFILES:
        raise KeyError(
            f"unknown library {name!r}; available: {sorted(LIBRARY_PROFILES)}"
        )
    return LIBRARY_PROFILES[key]
