"""Deterministic measurement-noise model.

The paper's Fig. 5c shows binding-overhead time differences that are
occasionally *negative* because system noise exceeds the tiny per-call
overhead for large matrices.  To reproduce that behaviour deterministically,
every simulated clock draws multiplicative jitter from a seeded generator.
"""

from __future__ import annotations

import numpy as np


class NoiseModel:
    """Multiplicative log-normal timing jitter with a fixed seed.

    The jitter is centred at 1.0; ``sigma`` is the relative standard
    deviation.  Each draw is independent, so repeated timing of the same
    kernel scatters the way real measurements do, but the whole sequence is
    reproducible for a given seed.
    """

    def __init__(self, sigma: float, seed: int = 0) -> None:
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma}")
        self.sigma = sigma
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def sample(self) -> float:
        """Return one multiplicative jitter factor (mean ~1.0)."""
        if self.sigma == 0.0:
            return 1.0
        # Log-normal keeps times positive; normalise the mean to 1.
        mu = -0.5 * np.log1p(self.sigma**2)
        s = np.sqrt(np.log1p(self.sigma**2))
        return float(np.exp(self._rng.normal(mu, s)))

    def reset(self) -> None:
        """Restart the jitter sequence from the original seed."""
        self._rng = np.random.default_rng(self.seed)
