"""Model of the pybind11 binding overhead (paper section 6.3).

The paper's key overhead result is that calling Ginkgo kernels through the
Python bindings costs a fixed per-call amount (argument conversion, GIL
handling, smart-pointer marshalling) that is 25-35% of the total for small
matrices and amortises to below 10% once the kernel itself takes long enough
(NNZ > 1e7), with absolute differences of 1e-7 to 1e-5 seconds on NVIDIA and
1e-6 to 1e-4 seconds on AMD hardware.

We reproduce this with a per-call overhead drawn around a device-dependent
mean; the comparison harness subtracts noisy "native" and "bound" timings,
so the measured difference can come out negative exactly as in Fig. 5c.
"""

from __future__ import annotations

import numpy as np


class BindingOverheadModel:
    """Per-call Python binding overhead.

    Args:
        base_overhead: Mean per-call overhead in seconds.  Calibrated to
            ~2.5 microseconds against an A100-sized launch latency so the
            relative overhead lands at 25-35% for small matrices.
        per_argument: Additional cost per converted argument.
        jitter_sigma: Relative spread of the per-call overhead.
        seed: RNG seed for deterministic sampling.
    """

    #: Default mean overheads per device family (seconds).
    DEFAULTS = {"gpu-nvidia": 4.0e-6, "gpu-amd": 10.0e-6, "cpu": 1.2e-6}

    def __init__(
        self,
        base_overhead: float = 4.0e-6,
        per_argument: float = 1.5e-7,
        jitter_sigma: float = 0.25,
        seed: int = 1234,
    ) -> None:
        if base_overhead < 0 or per_argument < 0:
            raise ValueError("overheads must be non-negative")
        self.base_overhead = base_overhead
        self.per_argument = per_argument
        self.jitter_sigma = jitter_sigma
        self._rng = np.random.default_rng(seed)

    @classmethod
    def for_device(cls, family: str, **kwargs) -> "BindingOverheadModel":
        """Create a model with the default mean for a device family."""
        if family not in cls.DEFAULTS:
            raise KeyError(
                f"unknown device family {family!r}; "
                f"available: {sorted(cls.DEFAULTS)}"
            )
        return cls(base_overhead=cls.DEFAULTS[family], **kwargs)

    def sample(self, num_arguments: int = 2) -> float:
        """Draw the binding overhead of one Python-to-C++ call."""
        if num_arguments < 0:
            raise ValueError("num_arguments must be non-negative")
        mean = self.base_overhead + num_arguments * self.per_argument
        jitter = 1.0 + self.jitter_sigma * float(self._rng.standard_normal())
        return max(mean * jitter, 0.1 * mean)

    def relative_overhead(self, kernel_time: float, num_arguments: int = 2) -> float:
        """Expected overhead fraction for a kernel of the given duration."""
        if kernel_time < 0:
            raise ValueError("kernel_time must be non-negative")
        mean = self.base_overhead + num_arguments * self.per_argument
        total = kernel_time + mean
        return mean / total if total > 0 else 0.0
