"""Device specifications for the simulated hardware.

Numbers are public datasheet values for the devices used in the paper's
evaluation (HoreKa: Intel Xeon Platinum 8368 nodes with NVIDIA A100 GPUs,
plus AMD Instinct MI100 accelerators on the Future Technologies partition).
``effective_bandwidth_fraction`` captures the fraction of peak STREAM-like
bandwidth a well-tuned sparse kernel achieves in practice; it is the single
calibration knob that maps datasheet numbers onto the paper's measured
GFLOP/s.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one device used by the roofline model.

    Attributes:
        name: Human-readable device name (display only — never used for
            dispatch; classify devices via :attr:`kind`/:attr:`vendor`).
        kind: ``"gpu"`` or ``"cpu"``.
        vendor: Hardware vendor identifier (``"nvidia"``/``"amd"``/
            ``"intel"``/``"generic"``); drives device-family dispatch
            such as binding-overhead calibration.
        memory_bandwidth: Peak DRAM bandwidth in bytes/s (per device for
            GPUs, per socket for CPUs).
        peak_flops: Peak arithmetic throughput in FLOP/s keyed by numpy
            dtype name (``float16``/``float32``/``float64``).
        launch_latency: Fixed cost of launching one kernel, in seconds.
            For CPUs this models the cost of entering an OpenMP parallel
            region (or a plain function call for single-threaded code).
        cores: Physical core count (CPUs only; GPUs use 0).
        single_core_bandwidth: Bandwidth achievable from a single core in
            bytes/s (CPUs only).  A single core cannot saturate the socket.
        effective_bandwidth_fraction: Fraction of ``memory_bandwidth`` an
            optimally tuned sparse kernel sustains.
        noise_sigma: Relative standard deviation of per-kernel timing noise.
        memory_capacity: Device memory in bytes, used by the allocator to
            emulate out-of-memory failures.
    """

    name: str
    kind: str
    memory_bandwidth: float
    peak_flops: dict = field(default_factory=dict)
    launch_latency: float = 5.0e-6
    cores: int = 0
    single_core_bandwidth: float = 0.0
    effective_bandwidth_fraction: float = 0.85
    noise_sigma: float = 0.03
    memory_capacity: float = 32e9
    vendor: str = ""

    def effective_bandwidth(self, num_threads: int | None = None) -> float:
        """Sustained bandwidth in bytes/s for this device.

        For CPUs, ``num_threads`` selects a point on the saturation curve;
        ``None`` means "all cores".
        """
        if self.kind == "gpu" or self.cores == 0:
            return self.memory_bandwidth * self.effective_bandwidth_fraction
        from repro.perfmodel.threads import thread_scaling

        threads = self.cores if num_threads is None else num_threads
        socket_peak = self.memory_bandwidth * self.effective_bandwidth_fraction
        return socket_peak * thread_scaling(
            threads, self.cores, self.single_core_bandwidth, socket_peak
        )

    def peak_flops_for(self, dtype_name: str) -> float:
        """Peak FLOP/s for the given value-type name."""
        try:
            return self.peak_flops[dtype_name]
        except KeyError as exc:
            raise KeyError(
                f"device {self.name!r} has no peak-FLOP entry for {dtype_name!r}"
            ) from exc


NVIDIA_A100 = DeviceSpec(
    name="NVIDIA A100",
    kind="gpu",
    memory_bandwidth=1555e9,
    peak_flops={"float16": 78e12, "float32": 19.5e12, "float64": 9.7e12},
    launch_latency=6.0e-6,
    effective_bandwidth_fraction=0.78,
    noise_sigma=0.03,
    memory_capacity=40e9,
    vendor="nvidia",
)

AMD_MI100 = DeviceSpec(
    name="AMD Instinct MI100",
    kind="gpu",
    memory_bandwidth=1228e9,
    peak_flops={"float16": 184.6e12, "float32": 23.1e12, "float64": 11.5e12},
    launch_latency=9.0e-6,
    effective_bandwidth_fraction=0.72,
    noise_sigma=0.06,
    memory_capacity=32e9,
    vendor="amd",
)

# One socket of the HoreKa CPU node (the paper reports 2 sockets x 38 cores;
# it quotes "76 physical cores" per node).  Thread sweeps in Fig. 3b stop at
# 32 threads, i.e. within one socket.
INTEL_XEON_8368 = DeviceSpec(
    name="Intel Xeon Platinum 8368",
    kind="cpu",
    memory_bandwidth=204e9,
    peak_flops={"float16": 1.4e12, "float32": 2.8e12, "float64": 1.4e12},
    launch_latency=1.5e-6,
    cores=38,
    single_core_bandwidth=13e9,
    effective_bandwidth_fraction=0.80,
    noise_sigma=0.02,
    memory_capacity=256e9,
    vendor="intel",
)

# A deliberately modest host used by the reference executor: sequential,
# unoptimised, mirroring Ginkgo's reference backend which exists for
# correctness checking rather than speed.
GENERIC_HOST = DeviceSpec(
    name="Reference host",
    kind="cpu",
    memory_bandwidth=20e9,
    peak_flops={"float16": 50e9, "float32": 100e9, "float64": 50e9},
    launch_latency=0.5e-6,
    cores=1,
    single_core_bandwidth=10e9,
    effective_bandwidth_fraction=0.60,
    noise_sigma=0.01,
    memory_capacity=256e9,
    vendor="generic",
)

DEVICE_SPECS = {
    "a100": NVIDIA_A100,
    "mi100": AMD_MI100,
    "xeon8368": INTEL_XEON_8368,
    "reference": GENERIC_HOST,
}


def get_device_spec(name: str) -> DeviceSpec:
    """Look up a :class:`DeviceSpec` by short name (case-insensitive)."""
    key = name.lower()
    if key not in DEVICE_SPECS:
        raise KeyError(
            f"unknown device spec {name!r}; available: {sorted(DEVICE_SPECS)}"
        )
    return DEVICE_SPECS[key]
