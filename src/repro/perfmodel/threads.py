"""CPU thread-scaling model.

Sparse kernels on multicore CPUs are memory-bandwidth bound: throughput
grows close to linearly while the aggregate per-core bandwidth is below the
socket's sustainable bandwidth, then saturates.  We model this with the
standard bandwidth-saturation form

    bw(t) = min(t * bw_core, bw_socket) smoothed by a soft-min,

which reproduces the near-linear region for few threads and the plateau the
paper observes when pyGinkgo approaches 32 threads (its speedup over SciPy
levels off at 7-35x for bandwidth-bound matrices).
"""

from __future__ import annotations


def thread_scaling(
    threads: int,
    max_cores: int,
    single_core_bandwidth: float,
    socket_bandwidth: float,
    smoothing: float = 4.0,
) -> float:
    """Fraction of socket bandwidth achieved with ``threads`` threads.

    Args:
        threads: Number of OpenMP threads in use (clamped to ``max_cores``).
        max_cores: Physical cores on the socket.
        single_core_bandwidth: Bytes/s a single core can stream.
        socket_bandwidth: Sustainable socket bandwidth (bytes/s).
        smoothing: Sharpness of the transition between the linear and
            saturated regimes; larger is sharper.

    Returns:
        A value in (0, 1]: the achieved fraction of ``socket_bandwidth``.
    """
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    if single_core_bandwidth <= 0 or socket_bandwidth <= 0:
        raise ValueError("bandwidths must be positive")
    t = min(threads, max_cores)
    linear = t * single_core_bandwidth / socket_bandwidth
    # Soft minimum of `linear` and 1.0: p-norm based smooth saturation.
    p = smoothing
    frac = linear / (1.0 + linear**p) ** (1.0 / p)
    return min(frac, 1.0)


#: Default fork/join cost growth per doubling of the team size.
OMP_REGION_ALPHA = 0.25


def omp_region_factor(threads: int, alpha: float = OMP_REGION_ALPHA) -> float:
    """Multiplier on per-launch latency for entering an OpenMP region.

    Waking an OpenMP thread team and passing the join barrier costs more
    the larger the team is — roughly logarithmically (tree barrier), the
    shape reported by the EPCC OpenMP microbenchmarks.  Serial execution
    (``threads <= 1``) opens no region and pays nothing extra.

    Returns:
        A factor >= 1 applied to the kernel's fixed launch cost.
    """
    if threads is None or threads <= 1:
        return 1.0
    from math import log2

    return 1.0 + alpha * log2(threads)


def parallel_efficiency(threads: int, serial_fraction: float) -> float:
    """Amdahl efficiency for compute-bound (non-bandwidth) kernel parts.

    Args:
        threads: Thread count.
        serial_fraction: Fraction of work that does not parallelise.

    Returns:
        Speedup over one thread divided by ``threads``.
    """
    if not 0.0 <= serial_fraction <= 1.0:
        raise ValueError("serial_fraction must be within [0, 1]")
    speedup = 1.0 / (serial_fraction + (1.0 - serial_fraction) / threads)
    return speedup / threads
