"""Hierarchical span traces over the simulated clock.

The profiler (:mod:`repro.ginkgo.log.profiler`) records *spans* — named,
nested intervals of simulated time — and *leaf events* — the individual
kernel executions, binding crossings, synchronisation stalls, and
transfers that actually advance the clock.  This module holds the
pure data structures:

* :class:`Span` — one named interval with children and metadata;
* :class:`Trace` — a forest of spans per clock track, with Chrome
  ``trace_event`` JSON export (loadable in ``chrome://tracing`` or
  Perfetto);
* :class:`AttributionTable` — the per-solve decomposition of wall-clock
  time into kernel / binding / stall buckets (the Fig. 5b/5c
  decomposition as a queryable object).

Everything here is deterministic: two traces recorded from same-seed runs
serialise to byte-identical JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: Leaf categories counted as attributable time.  ``fault`` covers time
#: injected or spent because of simulated failures: straggler / late-halo
#: delays, checkpoint regather after a shrink, recovery replays.
LEAF_CATEGORIES = (
    "kernel",
    "binding",
    "stall",
    "transfer",
    "host",
    "comm",
    "fault",
)

#: Fine-grained category -> coarse attribution bucket.  Anything that is
#: neither kernel work nor a binding crossing counts as stall time
#: (synchronisation, transfers, communication, backoff, fault recovery,
#: miscellaneous host overhead).
BUCKET_OF = {
    "kernel": "kernel",
    "binding": "binding",
    "stall": "stall",
    "transfer": "stall",
    "host": "stall",
    "comm": "stall",
    "fault": "stall",
}


@dataclass
class Span:
    """One named interval of simulated time.

    Structural spans (solver applies, iterations, preconditioner
    generates) contain children; leaf spans (kernels, binding crossings,
    stalls) carry the flop/byte/launch metadata of one clock event.
    Instant events are zero-duration spans (``end == start``).
    """

    name: str
    category: str
    start: float
    end: float | None = None
    track: str = ""
    meta: dict = field(default_factory=dict)
    children: list = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Length of the span in simulated seconds (0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    @property
    def self_time(self) -> float:
        """Duration not covered by child spans."""
        return self.duration - sum(c.duration for c in self.children)

    @property
    def is_leaf(self) -> bool:
        return self.category in LEAF_CATEGORIES

    def walk(self):
        """Yield this span and every descendant, depth-first, in order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> list:
        """All descendant spans (including self) with the given name."""
        return [s for s in self.walk() if s.name == name]

    @property
    def gflops(self) -> float:
        """Achieved GFLOP/s of a leaf span (inf for free/fused kernels).

        Zero-duration events with nonzero flops are *not* dropped: they
        surface as ``inf`` so aggregated tables can guard them while still
        attributing their flop counts to the parent span.
        """
        flops = float(self.meta.get("flops", 0.0))
        if flops <= 0.0:
            return 0.0
        if self.duration <= 0.0:
            return float("inf")
        return flops / self.duration / 1e9

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.category!r}, "
            f"start={self.start:.3e}, duration={self.duration:.3e}, "
            f"children={len(self.children)})"
        )


@dataclass
class _KernelRow:
    """Aggregated per-kernel statistics in an attribution table."""

    name: str
    time: float = 0.0
    calls: int = 0
    flops: float = 0.0
    bytes: float = 0.0
    launches: int = 0

    @property
    def gflops(self) -> float:
        """Aggregate GFLOP/s (inf-guarded for zero-time kernels)."""
        if self.flops <= 0.0:
            return 0.0
        if self.time <= 0.0:
            return float("inf")
        return self.flops / self.time / 1e9


class AttributionTable:
    """Where the simulated wall-clock time of a trace went.

    Attributes:
        total: Total traced wall-clock span, in simulated seconds (the sum
            of root-span durations across tracks).
        buckets: Seconds per coarse bucket (``kernel``/``binding``/
            ``stall``).
        categories: Seconds per fine-grained leaf category.
        kernels: Per-kernel-name aggregation (:class:`_KernelRow`).
        bindings: Seconds per binding call-site tag.
    """

    def __init__(self) -> None:
        self.total = 0.0
        self.buckets: dict = {"kernel": 0.0, "binding": 0.0, "stall": 0.0}
        self.categories: dict = {}
        self.kernels: dict = {}
        self.bindings: dict = {}
        #: Number of ``fused_region`` structural spans seen (lazy-flush
        #: regions and solver fused-step regions).
        self.fused_regions = 0
        #: Total eager operations those regions replaced, from each
        #: span's ``ops_replaced`` metadata.
        self.fused_ops_replaced = 0

    # ------------------------------------------------------------------
    # accumulation
    # ------------------------------------------------------------------
    def add_root(self, span: Span) -> None:
        self.total += span.duration
        for node in span.walk():
            if node.category == "fused_region":
                self.fused_regions += 1
                self.fused_ops_replaced += int(
                    node.meta.get("ops_replaced", 0)
                )
            if not node.is_leaf:
                continue
            bucket = BUCKET_OF.get(node.category, "stall")
            self.buckets[bucket] += node.duration
            self.categories[node.category] = (
                self.categories.get(node.category, 0.0) + node.duration
            )
            if node.category == "kernel":
                row = self.kernels.setdefault(node.name, _KernelRow(node.name))
                row.time += node.duration
                row.calls += 1
                row.flops += float(node.meta.get("flops", 0.0))
                row.bytes += float(node.meta.get("bytes", 0.0))
                row.launches += int(node.meta.get("launches", 0))
            elif node.category == "binding":
                self.bindings[node.name] = (
                    self.bindings.get(node.name, 0.0) + node.duration
                )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def kernel_time(self) -> float:
        return self.buckets["kernel"]

    @property
    def binding_time(self) -> float:
        return self.buckets["binding"]

    @property
    def stall_time(self) -> float:
        return self.buckets["stall"]

    @property
    def accounted(self) -> float:
        """Seconds attributed to any leaf bucket."""
        return sum(self.buckets.values())

    @property
    def coverage(self) -> float:
        """Fraction of the traced wall-clock span that is attributed."""
        if self.total <= 0.0:
            return 1.0 if self.accounted == 0.0 else 0.0
        return self.accounted / self.total

    @property
    def binding_fraction(self) -> float:
        """Binding overhead as a fraction of all attributed time."""
        accounted = self.accounted
        return self.binding_time / accounted if accounted > 0 else 0.0

    def summary(self) -> str:
        """Aligned text table: buckets first, then the slowest kernels."""
        lines = [f"{'bucket':<28} {'time':>12} {'share':>7}"]
        total = self.total or 1.0
        for bucket in ("kernel", "binding", "stall"):
            seconds = self.buckets[bucket]
            lines.append(
                f"{bucket:<28} {seconds * 1e3:>9.4f} ms "
                f"{seconds / total * 100:>5.1f}%"
            )
        lines.append(
            f"{'(accounted)':<28} {self.accounted * 1e3:>9.4f} ms "
            f"{self.coverage * 100:>5.1f}%"
        )
        if self.fused_regions:
            lines.append(
                f"{'(fused regions)':<28} {self.fused_regions:>9} "
                f"replacing {self.fused_ops_replaced} ops"
            )
        if self.kernels:
            lines.append("")
            lines.append(
                f"{'kernel':<28} {'calls':>7} {'time':>12} {'GFLOP/s':>9}"
            )
            rows = sorted(
                self.kernels.values(), key=lambda r: r.time, reverse=True
            )
            for row in rows:
                gf = row.gflops
                gf_text = "inf" if gf == float("inf") else f"{gf:.1f}"
                lines.append(
                    f"{row.name:<28} {row.calls:>7} "
                    f"{row.time * 1e3:>9.4f} ms {gf_text:>9}"
                )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"AttributionTable(total={self.total:.3e}, "
            f"kernel={self.kernel_time:.3e}, "
            f"binding={self.binding_time:.3e}, "
            f"stall={self.stall_time:.3e}, "
            f"coverage={self.coverage:.4f})"
        )


class Trace:
    """A forest of spans, one tree list per clock track.

    Tracks map to Chrome trace ``tid`` values; the whole trace shares one
    ``pid``.  Spans on one track never overlap except by nesting (the
    simulated machine is driven synchronously).
    """

    def __init__(self, name: str = "trace") -> None:
        self.name = name
        self.roots: list[Span] = []
        self.tracks: list[str] = []
        self._stacks: dict = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def _stack(self, track: str) -> list:
        if track not in self._stacks:
            self._stacks[track] = []
            self.tracks.append(track)
        return self._stacks[track]

    def open(self, name, category, start, track="", meta=None) -> Span:
        """Open a structural span; it becomes the parent of later spans."""
        span = Span(
            name=name,
            category=category,
            start=start,
            track=track,
            meta=dict(meta or {}),
        )
        stack = self._stack(track)
        if stack:
            stack[-1].children.append(span)
        else:
            self.roots.append(span)
        stack.append(span)
        return span

    def close(self, end, track="", meta=None) -> Span | None:
        """Close the innermost open span on ``track``."""
        stack = self._stack(track)
        if not stack:
            return None
        span = stack.pop()
        span.end = end
        if meta:
            span.meta.update(meta)
        return span

    def leaf(self, name, category, start, duration, track="", meta=None) -> Span:
        """Record a closed leaf span (one clock event)."""
        span = Span(
            name=name,
            category=category,
            start=start,
            end=start + duration,
            track=track,
            meta=dict(meta or {}),
        )
        stack = self._stack(track)
        if stack:
            stack[-1].children.append(span)
        else:
            self.roots.append(span)
        return span

    def instant(self, name, ts, track="", meta=None) -> Span:
        """Record a zero-duration marker (faults, allocations, ...)."""
        return self.leaf(name, "instant", ts, 0.0, track=track, meta=meta)

    def close_all(self, end) -> None:
        """Close every span still open (end of profiling)."""
        for track, stack in self._stacks.items():
            while stack:
                self.close(end, track=track)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def walk(self):
        """Every span in the trace, depth-first."""
        for root in self.roots:
            yield from root.walk()

    def find(self, name: str) -> list:
        return [s for s in self.walk() if s.name == name]

    @property
    def num_spans(self) -> int:
        return sum(1 for _ in self.walk())

    def attribution(self) -> AttributionTable:
        """Aggregate the trace into a kernel/binding/stall table."""
        table = AttributionTable()
        for root in self.roots:
            table.add_root(root)
        return table

    # ------------------------------------------------------------------
    # Chrome trace_event export
    # ------------------------------------------------------------------
    def chrome_trace_events(self) -> list:
        """The trace as a list of Chrome ``trace_event`` dicts.

        Complete (``ph: "X"``) events for spans, instant (``ph: "i"``)
        events for zero-duration markers; timestamps in microseconds,
        ordered monotonically.
        """
        tids = {track: index for index, track in enumerate(self.tracks)}
        events = []
        for span in self.walk():
            base = {
                "name": span.name,
                "cat": span.category,
                "ts": span.start * 1e6,
                "pid": 0,
                "tid": tids.get(span.track, 0),
            }
            if span.meta:
                base["args"] = {
                    k: v for k, v in sorted(span.meta.items())
                }
            if span.category == "instant" or (
                span.end is not None
                and span.duration == 0.0
                and not span.children
                and not span.is_leaf
            ):
                base["ph"] = "i"
                base["s"] = "t"
            else:
                base["ph"] = "X"
                base["dur"] = span.duration * 1e6
            events.append(base)
        # Monotonic ts; ties broken so enclosing spans precede children.
        events.sort(key=lambda e: (e["ts"], -e.get("dur", 0.0)))
        return events

    def to_chrome_trace(self) -> str:
        """Serialise to Chrome ``trace_event`` JSON.

        The returned string loads in ``chrome://tracing`` and Perfetto;
        equal traces serialise byte-identically.
        """
        payload = {
            "displayTimeUnit": "ms",
            "otherData": {"trace": self.name},
            "traceEvents": self.chrome_trace_events(),
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def save_chrome_trace(self, path) -> None:
        """Write the Chrome trace JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_chrome_trace())

    def __repr__(self) -> str:
        return (
            f"Trace({self.name!r}, tracks={len(self.tracks)}, "
            f"spans={self.num_spans})"
        )
