"""``pg.service`` — solver-as-a-service on the simulated runtime.

A :class:`SolverService` schedules streams of tenant solve jobs over a
shared worker pool on virtual time: admission control and per-tenant
quotas, EDF-within-priority ordering, batch-lane coalescing of
same-pattern small jobs (the throughput headline), distributed routing
for large systems, and deadline budgets through the resilient layer —
with per-job solutions byte-identical to solo solves.

    import repro as pg

    dev = pg.device("reference")
    jobs = pg.service.synthetic_workload(dev, num_jobs=64)
    svc = pg.service.SolverService(num_workers=4, coalesce=True)
    results = svc.run(jobs)
    print(svc.slo_report())
"""

from repro.service.coalesce import Coalescer, lane_key
from repro.service.job import ROUTES, JobResult, SolveJob
from repro.service.scheduler import POLICIES, AdmissionControl, JobQueue
from repro.service.service import SolverService
from repro.service.workload import synthetic_workload

__all__ = [
    "AdmissionControl",
    "Coalescer",
    "JobQueue",
    "JobResult",
    "POLICIES",
    "ROUTES",
    "SolveJob",
    "SolverService",
    "lane_key",
    "synthetic_workload",
]
