"""Batch-lane coalescing — continuous batching for sparse solves.

pyGinkgo's overhead analysis (and PR 3's dispatch cache) show that for
small systems the per-solve cost is dominated by Python dispatch and
per-iteration crossings, not arithmetic.  The PR-4 batched solvers
amortise exactly that — one lockstep kernel advances K systems — but
only when someone *assembles* a batch.  The coalescer is that someone:
when the scheduler dispatches a small job, it scans the queue for up to
``max_lane - 1`` more jobs that may share a lockstep lane and solves
them as one ``BatchCsr`` batch: one binding-dispatch crossing and one
batched kernel charge instead of K.

Two jobs may share a lane only when **every** numerics-relevant control
matches — this is the coalescing contract that keeps per-job results
byte-identical to solo solves (PR-4's compaction contract supplies the
batch-vs-scalar half):

* identical sparsity pattern: equal
  :meth:`~repro.ginkgo.matrix.csr.Csr.pattern_fingerprint` (a memoized
  structural hash over shape/row_ptrs/col_idxs, invalidated by the PR-3
  ``data_version`` generation counter);
* same solver name, iteration limit, tolerance, and value dtype;
* same priority class (coalescing must not smuggle a low-priority job
  ahead of a higher class).

Deadlines do *not* gate lane membership — a lane inherits the tightest
member deadline for accounting, and members that finish after their own
deadline are reported ``deadline_missed`` truthfully.
"""

from __future__ import annotations

from repro.service.job import SolveJob


def lane_key(job: SolveJob) -> tuple:
    """The coalescing key: jobs with equal keys may share a batch lane."""
    return (
        job.matrix.pattern_fingerprint(),
        job.solver,
        int(job.max_iters),
        float(job.reduction_factor),
        str(job.matrix.dtype),
        int(job.priority),
    )


class Coalescer:
    """Gathers queued jobs into the anchor job's batch lane.

    Args:
        max_lane: Largest lane (anchor included).  1 disables coalescing.
        solvers: Solver names eligible for lanes (batched lockstep
            implementations exist for these).
    """

    def __init__(
        self, max_lane: int = 16, solvers: tuple = ("cg", "bicgstab", "gmres")
    ) -> None:
        self.max_lane = max(1, int(max_lane))
        self.solvers = tuple(solvers)

    def eligible(self, job: SolveJob) -> bool:
        return self.max_lane > 1 and job.solver in self.solvers

    def gather(self, anchor: SolveJob, queue, now: float) -> list:
        """The anchor's lane: ``[anchor, ...]`` pulled from ``queue``.

        Members are removed from the queue.  Jobs whose deadline has
        already expired are left queued — the dispatcher answers them
        without charging a solve, and pulling them into a lane would
        charge one.
        """
        lane = [anchor]
        if not self.eligible(job=anchor):
            return lane
        key = lane_key(anchor)
        for candidate in queue.jobs():
            if len(lane) >= self.max_lane:
                break
            if (
                candidate.deadline is not None
                and now >= candidate.deadline
            ):
                continue
            if lane_key(candidate) == key:
                queue.remove(candidate.job_id)
                lane.append(candidate)
        return lane

    def __repr__(self) -> str:
        return f"Coalescer(max_lane={self.max_lane}, solvers={self.solvers})"
