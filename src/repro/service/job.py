"""Job and result records of the solver service.

A :class:`SolveJob` is one tenant request: a system matrix (an engine
:class:`~repro.ginkgo.matrix.csr.Csr` staged on the service's staging
executor), a right-hand side, and its scheduling envelope — tenant,
priority class, optional absolute deadline on the service's virtual
clock, and solver controls.  The service answers every submitted job
with a :class:`JobResult` whose status is one of

* ``completed`` — the solve ran; ``x`` holds the solution and ``report``
  the :class:`~repro.core.resilient.ResilienceReport` (or batch/
  distributed equivalent data distilled into one);
* ``rejected`` — admission control refused the job (queue full or
  tenant over quota); nothing was charged;
* ``timed_out`` — the deadline expired while the job was still queued
  (truthful partial report, no solve charged) or the in-flight solve hit
  its ``stop::Deadline`` budget (best-effort partial solution).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ginkgo.exceptions import GinkgoError

#: Job routes the scheduler can pick.
ROUTES = ("scalar", "batch", "distributed")


@dataclass
class SolveJob:
    """One solve request from a tenant.

    Attributes:
        matrix: Engine ``Csr`` holding the system (staging executor).
        rhs: Host-side right-hand side, shape ``(n, 1)`` (or ``(n,)``).
        tenant: Tenant identifier used for quotas and metrics.
        priority: Higher runs first; ties break by deadline (EDF), then
            arrival order.
        deadline: Absolute virtual-clock instant (service seconds) by
            which the job should finish; ``None`` disables it.
        arrival: Virtual-clock submission instant.
        solver: Solver name (``"cg"`` — the coalescer only lanes CG).
        max_iters / reduction_factor: Stopping controls, part of the
            coalescing lane key.
    """

    matrix: object
    rhs: np.ndarray
    tenant: str = "default"
    priority: int = 0
    deadline: float | None = None
    arrival: float = 0.0
    solver: str = "cg"
    max_iters: int = 200
    reduction_factor: float = 1e-9
    #: Assigned by the service at submission.
    job_id: int = -1

    def __post_init__(self) -> None:
        self.rhs = np.asarray(self.rhs, dtype=np.float64)
        if self.rhs.ndim == 1:
            self.rhs = self.rhs.reshape(-1, 1)
        if self.rhs.ndim != 2 or self.rhs.shape[1] != 1:
            raise GinkgoError(
                f"job rhs must be a column vector, got shape {self.rhs.shape}"
            )
        rows = self.matrix.size.rows
        if self.rhs.shape[0] != rows:
            raise GinkgoError(
                f"rhs has {self.rhs.shape[0]} rows for a {rows}-row matrix"
            )
        if self.arrival < 0:
            raise GinkgoError(f"arrival must be >= 0, got {self.arrival}")
        if self.deadline is not None and self.deadline <= self.arrival:
            raise GinkgoError(
                f"deadline {self.deadline} must be after arrival "
                f"{self.arrival}"
            )

    @property
    def num_rows(self) -> int:
        return int(self.matrix.size.rows)


@dataclass
class JobResult:
    """The service's answer to one job.

    Timing fields are virtual-clock instants on the service timeline;
    ``latency`` (completion minus arrival) therefore *includes* queue
    wait, which is what the SLO percentiles are measured over.
    """

    job: SolveJob
    status: str
    x: np.ndarray | None = None
    report: object = None
    route: str = ""
    lane_size: int = 0
    worker: int = -1
    #: Why admission refused the job (``rejected`` status only).
    reason: str = ""
    arrival: float = 0.0
    started: float = float("nan")
    finished: float = float("nan")
    #: The job finished, but after its deadline passed mid-solve.
    deadline_missed: bool = False

    @property
    def queue_wait(self) -> float:
        return self.started - self.arrival

    @property
    def solve_time(self) -> float:
        return self.finished - self.started

    @property
    def latency(self) -> float:
        return self.finished - self.arrival

    @property
    def converged(self) -> bool:
        return bool(self.report is not None and self.report.converged)

    def __repr__(self) -> str:
        return (
            f"JobResult(job={self.job.job_id}, status={self.status!r}, "
            f"route={self.route!r}, lane={self.lane_size}, "
            f"latency={self.latency:.3e})"
        )
