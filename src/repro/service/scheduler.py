"""Admission control and the priority/deadline job queue.

The queue implements the service's scheduling policy:

* ``"edf"`` (default) — strict priority classes; *within* a class,
  earliest deadline first (jobs without deadlines sort after all
  deadlines), ties broken by arrival order so equal jobs stay FIFO;
* ``"fifo"`` — pure arrival order, ignoring priority and deadline.
  This is the naive baseline the throughput gate compares against.

Admission control runs when an arrival is processed: a bounded queue
depth protects the service from unbounded backlog, and per-tenant quotas
cap any one tenant's outstanding (queued + running) jobs so a single
heavy tenant cannot starve the rest.  Rejected jobs are answered
immediately and truthfully — nothing is queued and no solve is charged.
"""

from __future__ import annotations

import heapq
import itertools

from repro.ginkgo.exceptions import GinkgoError
from repro.service.job import SolveJob

POLICIES = ("edf", "fifo")

#: Deadline sort key for jobs without one: after every real deadline.
_NO_DEADLINE = float("inf")


class JobQueue:
    """Priority queue over :class:`SolveJob` with EDF or FIFO ordering.

    Implemented as a heap plus an id-indexed live table so the coalescer
    can *remove* arbitrary queued jobs (lane members) without a rebuild:
    popped entries whose id is no longer live are skipped lazily.
    """

    def __init__(self, policy: str = "edf") -> None:
        if policy not in POLICIES:
            raise GinkgoError(
                f"unknown scheduling policy {policy!r}; available: {POLICIES}"
            )
        self.policy = policy
        self._heap: list = []
        self._live: dict[int, SolveJob] = {}
        self._seq = itertools.count()

    def _key(self, job: SolveJob) -> tuple:
        if self.policy == "fifo":
            return (job.arrival,)
        deadline = _NO_DEADLINE if job.deadline is None else job.deadline
        return (-job.priority, deadline, job.arrival)

    def push(self, job: SolveJob) -> None:
        heapq.heappush(
            self._heap, (*self._key(job), next(self._seq), job.job_id)
        )
        self._live[job.job_id] = job

    def pop(self) -> SolveJob | None:
        """Remove and return the next job per policy (None when empty)."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            job = self._live.pop(entry[-1], None)
            if job is not None:
                return job
        return None

    def remove(self, job_id: int) -> SolveJob | None:
        """Drop a queued job by id (lane coalescing); lazy heap cleanup."""
        return self._live.pop(job_id, None)

    def jobs(self) -> list:
        """Live queued jobs in policy order (for lane scans)."""
        order = sorted(
            self._heap, key=lambda entry: entry[:-1]
        )
        seen = set()
        out = []
        for entry in order:
            job = self._live.get(entry[-1])
            if job is not None and entry[-1] not in seen:
                seen.add(entry[-1])
                out.append(job)
        return out

    def __len__(self) -> int:
        return len(self._live)

    def __bool__(self) -> bool:
        return bool(self._live)


class AdmissionControl:
    """Queue-depth bound and per-tenant outstanding-job quotas.

    Args:
        max_queue_depth: Maximum queued jobs; ``None`` disables.
        default_quota: Outstanding-job cap applied to tenants without an
            explicit entry; ``None`` disables.
        quotas: tenant name -> outstanding-job cap overrides.
    """

    def __init__(
        self,
        max_queue_depth: int | None = None,
        default_quota: int | None = None,
        quotas: dict | None = None,
    ) -> None:
        if max_queue_depth is not None and max_queue_depth < 1:
            raise GinkgoError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}"
            )
        self.max_queue_depth = max_queue_depth
        self.default_quota = default_quota
        self.quotas = dict(quotas or {})

    def quota_for(self, tenant: str) -> int | None:
        return self.quotas.get(tenant, self.default_quota)

    def admit(
        self, job: SolveJob, queue_depth: int, tenant_outstanding: int
    ) -> str | None:
        """``None`` to admit, else the human-readable rejection reason."""
        if (
            self.max_queue_depth is not None
            and queue_depth >= self.max_queue_depth
        ):
            return f"queue full ({queue_depth}/{self.max_queue_depth})"
        quota = self.quota_for(job.tenant)
        if quota is not None and tenant_outstanding >= quota:
            return (
                f"tenant {job.tenant!r} over quota "
                f"({tenant_outstanding}/{quota})"
            )
        return None

    def __repr__(self) -> str:
        return (
            f"AdmissionControl(max_queue_depth={self.max_queue_depth}, "
            f"default_quota={self.default_quota}, quotas={self.quotas})"
        )
