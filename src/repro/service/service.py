"""The solver service: multi-tenant solve scheduling on virtual time.

:class:`SolverService` turns the repo's solve stack into a shared
facility: tenants submit :class:`~repro.service.job.SolveJob` streams
with arrival instants on a virtual clock; the service applies admission
control (:class:`~repro.service.scheduler.AdmissionControl`), orders the
backlog with EDF-within-priority scheduling
(:class:`~repro.service.scheduler.JobQueue`), and drives a pool of
workers — each owning a *fresh* executor, so per-worker simulated
timelines never interleave — through a discrete-event loop.

The headline throughput win is **coalescing**: when a worker picks up a
small job, the :class:`~repro.service.coalesce.Coalescer` pulls queued
jobs with the same pattern fingerprint and solver controls into one
PR-4 lockstep batch solve with per-system stopping.  Large systems
route to the PR-5 distributed path instead; everything executes under
the PR-1/6 resilient layer, with a job's ``stop::Deadline`` budget
charged from *arrival* (queue wait consumes it).

Result fidelity is contractual: a completed job's solution is
byte-identical to solving it alone (PR-4's lockstep compaction and the
blocking distributed path both preserve bit-exact arithmetic;
``overlap=True`` relaxes this and is off by default).

Event-loop shape (one iteration)::

    admit arrivals due now  ->  reap workers due now
        ->  dispatch while (free worker and backlog)
        ->  advance virtual time to the next arrival/completion

The service keeps a *frontend* clock (its own fresh executor) as the
shared timeline: waiting time is advanced with a ``queued`` stall label
and lifecycle instants (``enqueue``/``scheduled``/``solve_completed``)
are annotated on it, so ``pg.profile()`` traces show the scheduler the
same way it shows kernels.  SLO metrics (latency percentiles,
throughput, coalesce ratio, deadline misses) land in a
:class:`~repro.ginkgo.log.MetricsRegistry` under ``service_*`` names.

With ``real_pool=True`` dispatched solves additionally run on a real
:class:`~concurrent.futures.ThreadPoolExecutor` — results and virtual
timings are unchanged (each worker's executor is still used serially),
but the runtime's shared caches (dispatch, workspace pools, cachestats,
metrics) see genuine concurrency.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core import batch_api, distributed_api
from repro.core.device import device as _device_factory
from repro.core.interop import to_numpy, to_scipy
from repro.core.resilient import (
    FallbackChain,
    ResilienceReport,
    RetryPolicy,
    resilient_batch_solve,
    resilient_solve,
)
from repro.ginkgo.exceptions import GinkgoError
from repro.ginkgo.log.metrics import MetricsRegistry
from repro.ginkgo.matrix.dense import Dense
from repro.service.coalesce import Coalescer
from repro.service.job import ROUTES, JobResult, SolveJob
from repro.service.scheduler import AdmissionControl, JobQueue


class _Worker:
    """One slot of the solve pool: a fresh executor plus busy-state."""

    def __init__(self, index: int, exec_) -> None:
        self.index = index
        self.exec_ = exec_
        self.lane: list | None = None
        self.route = ""
        self.dispatched_at = 0.0
        self.free_at = 0.0
        self.future = None
        self.payloads: list | None = None

    @property
    def busy(self) -> bool:
        return self.lane is not None

    def reset(self) -> None:
        self.lane = None
        self.route = ""
        self.future = None
        self.payloads = None


class SolverService:
    """Async multi-tenant solve scheduler over a shared worker pool.

    Args:
        num_workers: Worker slots; each owns a fresh executor.
        device: Device name the workers (and frontend clock) run on.
        policy: ``"edf"`` (priority, then earliest deadline) or
            ``"fifo"`` (the naive baseline).
        coalesce: Enable batch-lane coalescing of small same-pattern
            jobs (the headline throughput optimisation).
        max_lane: Largest coalesced lane, anchor included.
        admission: :class:`AdmissionControl`; default admits everything.
        distributed_threshold: Jobs with at least this many rows route
            to the distributed path (``None`` disables routing).
        distributed_ranks: Simulated ranks for distributed solves.
        overlap: Use comm/compute-overlap distributed matrices.  Off by
            default because overlap relaxes the byte-identity contract
            to a rounding tolerance (see DESIGN.md).
        retry: :class:`RetryPolicy` for the resilient solve paths.
        fallback: Shared :class:`FallbackChain` (e.g. carrying a
            :class:`~repro.core.resilient.CircuitBreaker`) so scalar
            jobs reroute off an unhealthy device instead of being lost.
            ``None`` pins each solve to its worker's executor.
        metrics: Shared :class:`MetricsRegistry`; one is created when
            omitted.  Also fed by the resilient layer per solve.
        real_pool: Run dispatched solves on a real thread pool (same
            results and virtual timings; exercises the runtime's shared
            caches under true concurrency).
        device_kwargs: Extra executor-constructor kwargs (``seed``,
            ``noisy``, ...) applied to the frontend and every worker.
    """

    def __init__(
        self,
        num_workers: int = 2,
        device: str = "reference",
        policy: str = "edf",
        coalesce: bool = True,
        max_lane: int = 16,
        admission: AdmissionControl | None = None,
        distributed_threshold: int | None = 2048,
        distributed_ranks: int = 4,
        overlap: bool = False,
        retry: RetryPolicy | None = None,
        fallback: FallbackChain | None = None,
        metrics: MetricsRegistry | None = None,
        real_pool: bool = False,
        device_kwargs: dict | None = None,
    ) -> None:
        if num_workers < 1:
            raise GinkgoError(f"num_workers must be >= 1, got {num_workers}")
        self.device_name = device
        self.policy = policy
        self.coalesce = bool(coalesce)
        self.distributed_threshold = distributed_threshold
        self.distributed_ranks = int(distributed_ranks)
        self.overlap = bool(overlap)
        self.real_pool = bool(real_pool)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.admission = admission if admission is not None else AdmissionControl()
        self.coalescer = Coalescer(max_lane=max_lane if coalesce else 1)
        self._retry = retry
        self._fallback = fallback
        self._device_kwargs = dict(device_kwargs or {})
        # The frontend executor's clock is the service timeline; workers
        # get their own fresh executors so lane/solve kernel charges
        # never interleave across workers.
        self._frontend = _device_factory(
            device, fresh=True, **self._device_kwargs
        )
        self._workers = [
            _Worker(i, _device_factory(device, fresh=True, **self._device_kwargs))
            for i in range(num_workers)
        ]
        self.now = 0.0
        self._next_id = 0
        self._pending: list[SolveJob] = []
        # Validate the policy eagerly (JobQueue raises on unknown names).
        JobQueue(policy)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    @property
    def clock(self):
        """The frontend :class:`~repro.perfmodel.clock.SimClock`."""
        return self._frontend.clock

    @property
    def num_workers(self) -> int:
        return len(self._workers)

    def submit(self, job: SolveJob) -> int:
        """Queue a job for the next :meth:`run`; returns its job id."""
        if not isinstance(job, SolveJob):
            raise GinkgoError(
                f"submit expects a SolveJob, got {type(job).__name__}"
            )
        job.job_id = self._next_id
        self._next_id += 1
        self._pending.append(job)
        self.metrics.counter("service_jobs_submitted").inc()
        return job.job_id

    # ------------------------------------------------------------------
    # the event loop
    # ------------------------------------------------------------------
    def run(self, jobs=None) -> list:
        """Drive the arrival stream to completion; results in job order.

        Every submitted job is answered: the returned list holds one
        :class:`JobResult` per job, sorted by job id (submission order).
        """
        if jobs is not None:
            for job in jobs:
                self.submit(job)
        arrivals = sorted(self._pending, key=lambda j: (j.arrival, j.job_id))
        self._pending = []
        queue = JobQueue(self.policy)
        results: dict[int, JobResult] = {}
        outstanding: dict[str, int] = {}
        next_arrival = 0
        pool = (
            ThreadPoolExecutor(max_workers=len(self._workers))
            if self.real_pool
            else None
        )
        try:
            while (
                next_arrival < len(arrivals)
                or queue
                or any(w.busy for w in self._workers)
            ):
                while (
                    next_arrival < len(arrivals)
                    and arrivals[next_arrival].arrival <= self.now
                ):
                    self._admit(
                        arrivals[next_arrival], queue, outstanding, results
                    )
                    next_arrival += 1
                for worker in self._workers:
                    if worker.busy and self._free_at(worker) <= self.now:
                        self._complete(worker, results, outstanding)
                for worker in self._workers:
                    if not queue:
                        break
                    if not worker.busy:
                        self._dispatch(
                            worker, queue, results, outstanding, pool
                        )
                instants = []
                if next_arrival < len(arrivals):
                    instants.append(arrivals[next_arrival].arrival)
                instants.extend(
                    self._free_at(w) for w in self._workers if w.busy
                )
                if not instants:
                    break
                self._advance_to(min(instants), queued=len(queue))
        finally:
            if pool is not None:
                pool.shutdown(wait=True)
        return [results[job_id] for job_id in sorted(results)]

    def _advance_to(self, instant: float, queued: int) -> None:
        if instant <= self.now:
            return
        self.clock.advance(
            instant - self.now,
            category="stall" if queued else "host",
            label="queued" if queued else "service_idle",
            queue_depth=queued,
        )
        self.now = instant

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def _admit(self, job, queue, outstanding, results) -> None:
        reason = self.admission.admit(
            job, len(queue), outstanding.get(job.tenant, 0)
        )
        if reason is not None:
            results[job.job_id] = JobResult(
                job=job,
                status="rejected",
                reason=reason,
                arrival=job.arrival,
                started=job.arrival,
                finished=job.arrival,
            )
            self.metrics.counter("service_jobs_rejected").inc()
            self.clock.annotate(
                "rejected", job=job.job_id, tenant=job.tenant, reason=reason
            )
            return
        queue.push(job)
        outstanding[job.tenant] = outstanding.get(job.tenant, 0) + 1
        self.metrics.histogram("service_queue_depth").observe(len(queue))
        self.clock.annotate(
            "enqueue",
            job=job.job_id,
            tenant=job.tenant,
            priority=job.priority,
            rows=job.num_rows,
        )

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _route_for(self, job: SolveJob) -> str:
        if (
            self.distributed_threshold is not None
            and job.num_rows >= self.distributed_threshold
        ):
            return "distributed"
        return "scalar"

    def _dispatch(self, worker, queue, results, outstanding, pool) -> None:
        while queue:
            job = queue.pop()
            if job is None:
                return
            if job.deadline is not None and self.now >= job.deadline:
                self._expire_queued(job, results, outstanding)
                continue
            route = self._route_for(job)
            lane = [job]
            if route == "scalar" and self.coalesce:
                lane = self.coalescer.gather(job, queue, self.now)
                if len(lane) > 1:
                    route = "batch"
            worker.lane = lane
            worker.route = route
            worker.dispatched_at = self.now
            self.clock.annotate(
                "scheduled",
                jobs=",".join(str(j.job_id) for j in lane),
                worker=worker.index,
                route=route,
                lane=len(lane),
                wait=self.now - job.arrival,
            )
            if pool is not None:
                worker.free_at = float("nan")
                worker.future = pool.submit(
                    self._execute, worker, lane, route, self.now
                )
            else:
                duration, worker.payloads = self._execute(
                    worker, lane, route, self.now
                )
                worker.free_at = self.now + duration
            return

    def _expire_queued(self, job, results, outstanding) -> None:
        """Answer a job whose deadline passed while it waited.

        Truthful and cheap: no solve is charged (no worker clock moves),
        the returned solution is the untouched zero initial guess, and
        the partial report says so.
        """
        report = ResilienceReport(
            converged=False,
            breakdown=False,
            num_iterations=0,
            final_residual_norm=float("nan"),
            events=[
                (
                    "deadline_expired_in_queue",
                    {"job": job.job_id, "deadline": job.deadline},
                )
            ],
            attempts=0,
            executor_name="",
            timed_out=True,
            partial=True,
        )
        result = JobResult(
            job=job,
            status="timed_out",
            x=np.zeros_like(job.rhs),
            report=report,
            route="none",
            arrival=job.arrival,
            started=self.now,
            finished=self.now,
            deadline_missed=True,
        )
        results[job.job_id] = result
        outstanding[job.tenant] -= 1
        self._record(result)
        self.clock.annotate(
            "deadline_expired_in_queue", job=job.job_id, tenant=job.tenant
        )

    # ------------------------------------------------------------------
    # execution (runs on the pool thread under real_pool=True)
    # ------------------------------------------------------------------
    def _execute(self, worker, lane, route, dispatch_now):
        clock = worker.exec_.clock
        if clock.now < dispatch_now:
            # The worker sat idle since its last job; bring its timeline
            # up to the service clock before charging the solve.
            clock.advance(
                dispatch_now - clock.now, category="stall", label="worker_idle"
            )
        start = clock.now
        clock.push_span(
            "service_solve",
            category="region",
            route=route,
            lane=len(lane),
            jobs=",".join(str(j.job_id) for j in lane),
        )
        try:
            if route == "batch":
                payloads = self._solve_batch(worker.exec_, lane)
            elif route == "distributed":
                payloads = self._solve_distributed(worker.exec_, lane[0])
            else:
                payloads = self._solve_scalar(
                    worker.exec_, lane[0], dispatch_now
                )
        finally:
            clock.pop_span()
        return clock.now - start, payloads

    def _solve_scalar(self, exec_, job, dispatch_now) -> list:
        mtx = (
            job.matrix
            if job.matrix.executor is exec_
            else job.matrix.copy_to(exec_)
        )
        b = Dense.create(exec_, job.rhs)
        # The deadline budget is what's left after queueing: waiting in
        # the backlog spends it exactly like solving does.
        remaining = (
            None if job.deadline is None else job.deadline - dispatch_now
        )
        fallback = (
            self._fallback if self._fallback is not None else FallbackChain(exec_)
        )
        report, x = resilient_solve(
            exec_,
            mtx,
            b,
            solver=job.solver,
            max_iters=job.max_iters,
            reduction_factor=job.reduction_factor,
            retry=self._retry,
            fallback=fallback,
            deadline=remaining,
            metrics=self.metrics,
        )
        status = "timed_out" if report.timed_out else "completed"
        return [
            {
                "x": np.array(to_numpy(x), copy=True),
                "report": report,
                "status": status,
            }
        ]

    def _solve_batch(self, exec_, lane) -> list:
        bm = batch_api.matrices(
            exec_, [to_scipy(job.matrix) for job in lane]
        )
        bb = batch_api.vectors(exec_, [job.rhs for job in lane])
        anchor = lane[0]
        report, x = resilient_batch_solve(
            exec_,
            bm,
            bb,
            solver=anchor.solver,
            max_iters=anchor.max_iters,
            reduction_factor=anchor.reduction_factor,
            retry=self._retry,
            metrics=self.metrics,
        )
        payloads = []
        for k, job in enumerate(lane):
            # Distil the per-system slice of the batch report into the
            # scalar report shape the JobResult contract promises.
            payloads.append(
                {
                    "x": np.array(x._data[k], copy=True),
                    "report": ResilienceReport(
                        converged=bool(report.converged[k]),
                        breakdown=False,
                        num_iterations=int(report.num_iterations[k]),
                        final_residual_norm=float(
                            report.final_residual_norm[k]
                        ),
                        events=[
                            (
                                "batch_lane",
                                {"lane": len(lane), "system": k},
                            )
                        ],
                        attempts=report.attempts,
                        executor_name=report.executor_name,
                    ),
                    "status": "completed",
                }
            )
        return payloads

    def _solve_distributed(self, exec_, job) -> list:
        sp_mtx = to_scipy(job.matrix).tocsr()
        part = distributed_api.partition(job.num_rows, self.distributed_ranks)
        mtx = distributed_api.matrix(exec_, part, sp_mtx, overlap=self.overlap)
        b = distributed_api.vector(exec_, part, job.rhs, comm=mtx.comm)
        x = distributed_api.zeros_like(b)
        makers = {"cg": distributed_api.cg, "gmres": distributed_api.gmres}
        if job.solver not in makers:
            raise GinkgoError(
                f"no distributed route for solver {job.solver!r}; "
                f"available: {sorted(makers)}"
            )
        handle = makers[job.solver](
            exec_,
            mtx,
            max_iters=job.max_iters,
            reduction_factor=job.reduction_factor,
        )
        logger, x = handle.apply(b, x)
        report = ResilienceReport(
            converged=logger.converged,
            breakdown=logger.breakdown,
            num_iterations=logger.num_iterations,
            final_residual_norm=logger.final_residual_norm,
            residual_norms=list(logger.residual_norms),
            events=[
                (
                    "distributed_solve",
                    {
                        "ranks": self.distributed_ranks,
                        "overlap": self.overlap,
                        "reductions": handle.num_reductions,
                    },
                )
            ],
            attempts=1,
            executor_name=exec_.name,
            logger=logger,
        )
        xh = np.asarray(x.to_numpy(), dtype=np.float64).reshape(-1, 1)
        return [{"x": xh, "report": report, "status": "completed"}]

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------
    def _free_at(self, worker) -> float:
        if worker.future is not None:
            duration, worker.payloads = worker.future.result()
            worker.future = None
            worker.free_at = worker.dispatched_at + duration
        return worker.free_at

    def _complete(self, worker, results, outstanding) -> None:
        self._free_at(worker)
        finished = worker.free_at
        lane, payloads = worker.lane, worker.payloads
        for job, payload in zip(lane, payloads):
            missed = payload["status"] == "timed_out" or (
                job.deadline is not None and finished > job.deadline
            )
            result = JobResult(
                job=job,
                status=payload["status"],
                x=payload["x"],
                report=payload["report"],
                route=worker.route,
                lane_size=len(lane),
                worker=worker.index,
                arrival=job.arrival,
                started=worker.dispatched_at,
                finished=finished,
                deadline_missed=missed,
            )
            results[job.job_id] = result
            outstanding[job.tenant] -= 1
            self._record(result)
        self.clock.annotate(
            "solve_completed",
            jobs=",".join(str(j.job_id) for j in lane),
            worker=worker.index,
            route=worker.route,
        )
        worker.reset()

    def _record(self, result: JobResult) -> None:
        metrics = self.metrics
        if result.status == "completed":
            metrics.counter("service_jobs_completed").inc()
        else:
            metrics.counter("service_jobs_timed_out").inc()
        if result.route in ROUTES:
            metrics.counter(f"service_route_{result.route}").inc()
        if result.lane_size >= 2:
            metrics.counter("service_jobs_coalesced").inc()
        if result.deadline_missed:
            metrics.counter("service_deadline_missed").inc()
        metrics.histogram("service_latency").observe(result.latency)
        metrics.histogram("service_queue_wait").observe(result.queue_wait)
        metrics.histogram("service_solve_time").observe(result.solve_time)

    # ------------------------------------------------------------------
    # SLO reporting
    # ------------------------------------------------------------------
    def slo_report(self) -> dict:
        """SLO snapshot: percentiles, throughput, coalescing, misses.

        Latency percentiles are over *answered* jobs (completed and
        timed out — a deadline miss still consumed service capacity);
        throughput counts completed jobs per simulated second of the
        service timeline (the makespan).
        """
        metrics = self.metrics
        latency = metrics.histogram("service_latency")
        queue_wait = metrics.histogram("service_queue_wait")
        depth = metrics.histogram("service_queue_depth")
        completed = metrics.counter("service_jobs_completed").value
        timed_out = metrics.counter("service_jobs_timed_out").value
        answered = completed + timed_out
        coalesced = metrics.counter("service_jobs_coalesced").value
        makespan = self.now
        return {
            "makespan": makespan,
            "jobs_submitted": metrics.counter("service_jobs_submitted").value,
            "jobs_completed": completed,
            "jobs_timed_out": timed_out,
            "jobs_rejected": metrics.counter("service_jobs_rejected").value,
            "p50_latency": latency.percentile(50),
            "p99_latency": latency.percentile(99),
            "mean_queue_wait": queue_wait.mean,
            "max_queue_depth": depth.max if depth.count else 0.0,
            "throughput": (
                completed / makespan if makespan > 0 else float("nan")
            ),
            "coalesced_jobs": coalesced,
            "coalesce_ratio": (
                coalesced / answered if answered else 0.0
            ),
            "deadline_missed": metrics.counter(
                "service_deadline_missed"
            ).value,
            "deadline_miss_rate": (
                metrics.counter("service_deadline_missed").value / answered
                if answered
                else 0.0
            ),
            "routes": {
                route: metrics.counter(f"service_route_{route}").value
                for route in ROUTES
            },
        }

    def __repr__(self) -> str:
        return (
            f"SolverService(workers={len(self._workers)}, "
            f"policy={self.policy!r}, coalesce={self.coalesce}, "
            f"device={self.device_name!r}, now={self.now:.3e})"
        )
