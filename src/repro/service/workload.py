"""Synthetic multi-tenant workloads for the solver service.

:func:`synthetic_workload` builds a seeded, fully deterministic stream
of :class:`~repro.service.job.SolveJob`: Poisson-ish arrivals (seeded
exponential inter-arrival gaps), a small set of shared sparsity
patterns (so the coalescer has lanes to find — mirroring parameter
sweeps and ensemble runs, where thousands of systems share one mesh),
and an optional trickle of large systems that exercise the distributed
route.  All matrices are SPD tridiagonal-style systems, so CG converges
quickly and the per-job arithmetic stays cheap.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.interop import from_scipy
from repro.ginkgo.exceptions import GinkgoError
from repro.service.job import SolveJob


def _spd_tridiagonal(n: int, rng: np.random.Generator) -> sp.csr_matrix:
    """A diagonally dominant SPD tridiagonal system with random values."""
    diag = 4.0 + rng.random(n)
    off = -1.0 - 0.5 * rng.random(n - 1)
    mtx = sp.diags(
        [off, diag, off], offsets=[-1, 0, 1], format="csr"
    )
    # Symmetrise the off-diagonals (diags used `off` for both sides
    # already, but keep the construction explicit and exact).
    return ((mtx + mtx.T) * 0.5).tocsr()


def synthetic_workload(
    device,
    num_jobs: int = 32,
    num_patterns: int = 4,
    small_n: int = 48,
    large_n: int = 0,
    large_every: int = 0,
    tenants: tuple = ("acme", "umbrella", "initech"),
    mean_interarrival: float = 1e-4,
    deadline_slack: float | None = None,
    priority_levels: int = 1,
    max_iters: int = 200,
    reduction_factor: float = 1e-9,
    seed: int = 0,
) -> list:
    """Build a deterministic arrival stream of solve jobs.

    Args:
        device: Executor the job matrices are staged on.
        num_jobs: Stream length.
        num_patterns: Distinct sparsity patterns among the small jobs
            (pattern ``p`` has ``small_n + 4 * p`` rows, so patterns
            differ structurally, not just in values).
        small_n: Base row count of the small (coalescible) jobs.
        large_n: Row count of large jobs (routed distributed when it
            meets the service's threshold); 0 disables large jobs.
        large_every: Every ``large_every``-th job is large (0 disables).
        tenants: Tenant names cycled through pseudo-randomly.
        mean_interarrival: Mean of the exponential inter-arrival gap,
            in simulated seconds.
        deadline_slack: When set, each job gets
            ``deadline = arrival + slack * (0.5 + U[0,1))``.
        priority_levels: Priorities drawn uniformly from
            ``[0, priority_levels)``.
        max_iters / reduction_factor: Stopping controls stamped on every
            job (kept uniform so all same-pattern jobs are laneable).
        seed: Seed for every random draw in the stream.

    Returns:
        Jobs sorted by arrival time.
    """
    if num_jobs < 1:
        raise GinkgoError(f"num_jobs must be >= 1, got {num_jobs}")
    if num_patterns < 1:
        raise GinkgoError(f"num_patterns must be >= 1, got {num_patterns}")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(mean_interarrival, size=num_jobs)
    arrivals = np.cumsum(gaps) - gaps[0]  # first job arrives at t=0
    jobs = []
    for index in range(num_jobs):
        arrival = float(arrivals[index])
        is_large = (
            large_n > 0
            and large_every > 0
            and index % large_every == large_every - 1
        )
        if is_large:
            n = large_n
        else:
            n = small_n + 4 * int(rng.integers(num_patterns))
        mtx = from_scipy(_spd_tridiagonal(n, rng), device=device)
        rhs = rng.standard_normal((n, 1))
        deadline = None
        if deadline_slack is not None:
            deadline = arrival + deadline_slack * (0.5 + rng.random())
        jobs.append(
            SolveJob(
                matrix=mtx,
                rhs=rhs,
                tenant=tenants[int(rng.integers(len(tenants)))],
                priority=int(rng.integers(priority_levels)),
                deadline=deadline,
                arrival=arrival,
                solver="cg",
                max_iters=max_iters,
                reduction_factor=reduction_factor,
            )
        )
    return jobs
