"""Synthetic stand-ins for the SuiteSparse benchmark matrices.

The paper benchmarks on 30 (SpMV), 40 (solvers), and 45 (overhead)
matrices from the SuiteSparse collection, "with dimensions up to 1e6 and
densities below 1% in all cases except for five with a density greater
than 1%".  SuiteSparse is not downloadable here, so this package generates
matrices that match the *attributes the figures depend on*: dimension,
nonzero count, density, structure class (mesh / circuit / diagonal /
random), and row-length imbalance.
"""

from repro.suitesparse.generators import (
    banded,
    circuit_like,
    diagonal_mass,
    kronecker_graph,
    mesh_delaunay,
    poisson_2d,
    poisson_3d,
    random_general,
    spd_random,
)
from repro.suitesparse.collection import (
    MatrixSpec,
    TABLE2,
    overhead_suite,
    solver_suite,
    spmv_suite,
    table2_suite,
)
from repro.suitesparse.stats import matrix_stats

__all__ = [
    "MatrixSpec",
    "TABLE2",
    "banded",
    "circuit_like",
    "diagonal_mass",
    "kronecker_graph",
    "matrix_stats",
    "mesh_delaunay",
    "overhead_suite",
    "poisson_2d",
    "poisson_3d",
    "random_general",
    "solver_suite",
    "spd_random",
    "spmv_suite",
    "table2_suite",
]
