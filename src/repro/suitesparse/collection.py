"""Named matrix collections mirroring the paper's benchmark suites.

* :data:`TABLE2` / :func:`table2_suite` — the six representative matrices
  A-F of the paper's Table 2 (synthetic equivalents matching dimension,
  NNZ, and structure class);
* :func:`spmv_suite` — 30 matrices for the SpMV benchmarks (Figs. 3a/3b);
* :func:`solver_suite` — 40 matrices for the solver benchmarks (Fig. 3c),
  including five with density > 1% as in the paper;
* :func:`overhead_suite` — 45 matrices for the binding-overhead study
  (Figs. 5a-5c).

Suites are lazily built and size-scalable: ``scale < 1`` shrinks every
matrix proportionally so the full benchmark set runs in CI time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np
import scipy.sparse as sp

from repro.suitesparse import generators as gen


@dataclass
class MatrixSpec:
    """A lazily-built benchmark matrix with its provenance.

    Attributes:
        name: Identifier (for Table-2 entries, the SuiteSparse name it
            stands in for).
        kind: Structure class (``mesh``, ``circuit``, ``diagonal``, ...).
        builder: Zero-argument callable producing the CSR matrix.
        label: Single-letter label for Table-2 matrices ('A'..'F').
    """

    name: str
    kind: str
    builder: Callable[[], sp.csr_matrix]
    label: str = ""
    _cache: sp.csr_matrix | None = field(default=None, repr=False)

    def build(self) -> sp.csr_matrix:
        """Build (and cache) the matrix."""
        if self._cache is None:
            self._cache = self.builder().tocsr()
        return self._cache

    def clear(self) -> None:
        """Drop the cached matrix to free memory."""
        self._cache = None


def _scaled(value: int, scale: float, minimum: int = 8) -> int:
    return max(minimum, int(round(value * scale)))


def table2_suite(scale: float = 1.0) -> list[MatrixSpec]:
    """The six representative matrices of the paper's Table 2.

    | label | SuiteSparse name | dimension | NNZ      | class      |
    |-------|------------------|-----------|----------|------------|
    | A     | bcsstm37         | 25,503    | 1.55e+04 | diagonal   |
    | B     | bcsstm39         | 46,772    | 4.68e+04 | diagonal   |
    | C     | mult_dcop_01     | 25,187    | 1.93e+05 | circuit    |
    | D     | delaunay_n17     | 131,072   | 7.86e+05 | mesh       |
    | E     | av41092          | 41,092    | 1.68e+06 | FEM/banded |
    | F     | ASIC_320ks       | 321,671   | 1.83e+06 | circuit    |
    """
    s = scale
    return [
        MatrixSpec(
            "bcsstm37", "diagonal",
            lambda: gen.diagonal_mass(_scaled(25503, s), 0.392, seed=37),
            label="A",
        ),
        MatrixSpec(
            "bcsstm39", "diagonal",
            lambda: gen.diagonal_mass(_scaled(46772, s), 0.0, seed=39),
            label="B",
        ),
        MatrixSpec(
            "mult_dcop_01", "circuit",
            lambda: gen.circuit_like(
                _scaled(25187, s), avg_row_nnz=6.6, seed=1
            ),
            label="C",
        ),
        MatrixSpec(
            "delaunay_n17", "mesh",
            lambda: gen.mesh_delaunay(_scaled(131072, s), seed=17),
            label="D",
        ),
        MatrixSpec(
            "av41092", "banded",
            lambda: gen.banded(_scaled(41092, s), bandwidth=20, seed=41),
            label="E",
        ),
        MatrixSpec(
            "ASIC_320ks", "circuit",
            lambda: gen.circuit_like(
                _scaled(321671, s), avg_row_nnz=3.7, num_dense_rows=2,
                dense_row_fill=0.08, seed=320,
            ),
            label="F",
        ),
    ]


#: Module-level Table-2 suite at paper scale.
TABLE2 = table2_suite()

# Structure classes cycled through the generic suites, with per-class
# builders parameterised by target nonzero count.
_KIND_BUILDERS: list = [
    (
        "mesh",
        lambda nnz, seed: gen.mesh_delaunay(max(int(nnz / 7), 32), seed=seed),
    ),
    (
        "poisson2d",
        lambda nnz, seed: gen.poisson_2d(max(int(math.sqrt(nnz / 5.0)), 4)),
    ),
    (
        "circuit",
        lambda nnz, seed: gen.circuit_like(max(int(nnz / 8), 32), seed=seed),
    ),
    (
        "random",
        lambda nnz, seed: gen.random_general(
            max(int(math.sqrt(nnz / 0.001)), 64), 0.001, seed=seed
        ),
    ),
    (
        "banded",
        lambda nnz, seed: gen.banded(
            max(int(nnz / 21), 32), bandwidth=10, seed=seed
        ),
    ),
    (
        "spd",
        lambda nnz, seed: gen.spd_random(
            max(int(math.sqrt(nnz / 0.002)), 64), 0.002, seed=seed
        ),
    ),
    (
        "poisson3d",
        lambda nnz, seed: gen.poisson_3d(max(int((nnz / 7.0) ** (1 / 3)), 3)),
    ),
]

# Dense-ish matrices (> 1% density) present in the paper's solver suite.
_DENSE_BUILDER = (
    "dense_random",
    lambda nnz, seed: gen.random_general(
        max(int(math.sqrt(nnz / 0.02)), 32), 0.02, seed=seed
    ),
)


def _generic_suite(
    count: int,
    min_nnz: float,
    max_nnz: float,
    seed: int,
    dense_count: int = 0,
    spd_only: bool = False,
) -> list[MatrixSpec]:
    targets = np.logspace(math.log10(min_nnz), math.log10(max_nnz), count)
    specs: list[MatrixSpec] = []
    kinds = (
        [k for k in _KIND_BUILDERS if k[0] in ("mesh", "poisson2d", "spd", "poisson3d")]
        if spd_only
        else _KIND_BUILDERS
    )
    dense_indices = set(
        np.linspace(1, count - 1, num=dense_count, dtype=int).tolist()
    ) if dense_count else set()
    for index, target in enumerate(targets):
        if index in dense_indices:
            kind, builder = _DENSE_BUILDER
        else:
            kind, builder = kinds[index % len(kinds)]
        target_nnz = float(target)
        specs.append(
            MatrixSpec(
                name=f"{kind}_{index:02d}",
                kind=kind,
                builder=(
                    lambda b=builder, t=target_nnz, s=seed + index: b(t, s)
                ),
            )
        )
    return specs


def spmv_suite(
    count: int = 30, min_nnz: float = 1e4, max_nnz: float = 5e6, seed: int = 100
) -> list[MatrixSpec]:
    """The 30-matrix SpMV benchmark suite (Figs. 3a/3b/4)."""
    return _generic_suite(count, min_nnz, max_nnz, seed)


def solver_suite(
    count: int = 40, min_nnz: float = 1e4, max_nnz: float = 5e6, seed: int = 200
) -> list[MatrixSpec]:
    """The 40-matrix solver benchmark suite (Fig. 3c).

    Includes five matrices above 1% density, matching the paper's note
    that all but five matrices are below 1% dense.
    """
    return _generic_suite(count, min_nnz, max_nnz, seed, dense_count=5)


def overhead_suite(
    count: int = 45, min_nnz: float = 1e4, max_nnz: float = 1e7, seed: int = 300
) -> list[MatrixSpec]:
    """The 45-matrix binding-overhead suite (Figs. 5a-5c).

    Spans up to 1e7 nonzeros so the overhead-amortisation crossover
    (below 10% overhead for NNZ > 1e7) is visible.
    """
    return _generic_suite(count, min_nnz, max_nnz, seed)
