"""Sparse matrix generators by structure class.

Each generator returns a ``scipy.sparse.csr_matrix`` and is deterministic
for a given seed.  The classes mirror the kinds of matrices in the paper's
SuiteSparse selection (Table 2): diagonal mass matrices (bcsstm*),
circuit-simulation matrices (mult_dcop, ASIC), mesh graphs (delaunay_n17),
and FEM/structural matrices (av41092).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


def poisson_2d(nx: int, ny: int | None = None) -> sp.csr_matrix:
    """5-point finite-difference Laplacian on an nx x ny grid (SPD)."""
    if nx < 1:
        raise ValueError(f"nx must be >= 1, got {nx}")
    ny = ny or nx
    ix = sp.identity(nx, format="csr")
    iy = sp.identity(ny, format="csr")
    tx = sp.diags(
        [-np.ones(nx - 1), 2.0 * np.ones(nx), -np.ones(nx - 1)],
        [-1, 0, 1],
        format="csr",
    )
    ty = sp.diags(
        [-np.ones(ny - 1), 2.0 * np.ones(ny), -np.ones(ny - 1)],
        [-1, 0, 1],
        format="csr",
    )
    out = (sp.kron(iy, tx) + sp.kron(ty, ix)).tocsr()
    out.eliminate_zeros()  # scipy's kron stores explicit zeros (BSR blocks)
    return out


def poisson_3d(n: int) -> sp.csr_matrix:
    """7-point finite-difference Laplacian on an n^3 grid (SPD)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    one = sp.identity(n, format="csr")
    t = sp.diags(
        [-np.ones(n - 1), 2.0 * np.ones(n), -np.ones(n - 1)],
        [-1, 0, 1],
        format="csr",
    )
    out = (
        sp.kron(sp.kron(one, one), t)
        + sp.kron(sp.kron(one, t), one)
        + sp.kron(sp.kron(t, one), one)
    ).tocsr()
    out.eliminate_zeros()  # scipy's kron stores explicit zeros (BSR blocks)
    return out


def diagonal_mass(n: int, zero_fraction: float = 0.4, seed: int = 0) -> sp.csr_matrix:
    """Diagonal mass matrix with a fraction of zero rows (bcsstm-style).

    The bcsstm37/bcsstm39 matrices in Table 2 have *fewer* nonzeros than
    rows: they are diagonal matrices whose constrained degrees of freedom
    carry structural zeros.
    """
    if not 0.0 <= zero_fraction < 1.0:
        raise ValueError(f"zero_fraction must be in [0, 1), got {zero_fraction}")
    rng = np.random.default_rng(seed)
    diag = rng.uniform(0.5, 2.0, size=n)
    zero_count = int(n * zero_fraction)
    if zero_count:
        diag[rng.choice(n, size=zero_count, replace=False)] = 0.0
    mat = sp.diags(diag, format="csr")
    mat.eliminate_zeros()
    return mat.tocsr()


def mesh_delaunay(num_points: int, seed: int = 0) -> sp.csr_matrix:
    """Graph Laplacian-like matrix of a planar Delaunay triangulation.

    Mirrors the delaunay_nXX family: ~6 nonzeros per row, symmetric,
    perfectly load-balanced — the structure class where GPUs shine.
    """
    from scipy.spatial import Delaunay

    if num_points < 4:
        raise ValueError(f"need at least 4 points, got {num_points}")
    rng = np.random.default_rng(seed)
    points = rng.random((num_points, 2))
    tri = Delaunay(points)
    simplices = tri.simplices
    rows = np.concatenate(
        [simplices[:, 0], simplices[:, 1], simplices[:, 2]]
    )
    cols = np.concatenate(
        [simplices[:, 1], simplices[:, 2], simplices[:, 0]]
    )
    data = np.ones(rows.size)
    adj = sp.coo_matrix((data, (rows, cols)), shape=(num_points, num_points))
    adj = adj + adj.T
    adj.data[:] = 1.0
    degree = np.asarray(adj.sum(axis=1)).ravel()
    return (sp.diags(degree + 1.0) - adj).tocsr()


def circuit_like(
    n: int,
    avg_row_nnz: float = 6.0,
    num_dense_rows: int = 4,
    dense_row_fill: float = 0.3,
    seed: int = 0,
) -> sp.csr_matrix:
    """Circuit-simulation style matrix (mult_dcop / ASIC style).

    Mostly very sparse rows plus a handful of nearly dense rows/columns
    (power/ground rails), producing the row-imbalance that penalises
    classical CSR kernels.
    """
    rng = np.random.default_rng(seed)
    nnz_target = int(n * avg_row_nnz)
    rows = rng.integers(0, n, size=nnz_target)
    cols = rng.integers(0, n, size=nnz_target)
    vals = rng.standard_normal(nnz_target) * 0.1
    # Dense rails.
    rail_rows, rail_cols, rail_vals = [], [], []
    for rail in range(num_dense_rows):
        row = int(rng.integers(0, n))
        picks = rng.choice(n, size=int(n * dense_row_fill), replace=False)
        rail_rows.append(np.full(picks.size, row))
        rail_cols.append(picks)
        rail_vals.append(rng.standard_normal(picks.size) * 0.1)
        # Mirror as a dense column too.
        rail_rows.append(picks)
        rail_cols.append(np.full(picks.size, row))
        rail_vals.append(rng.standard_normal(picks.size) * 0.1)
    rows = np.concatenate([rows] + rail_rows)
    cols = np.concatenate([cols] + rail_cols)
    vals = np.concatenate([vals] + rail_vals)
    mat = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
    mat.sum_duplicates()
    # Diagonal dominance keeps the matrix usable by factorisations.
    row_sums = np.asarray(np.abs(mat).sum(axis=1)).ravel()
    return (mat + sp.diags(row_sums + 1.0)).tocsr()


def banded(n: int, bandwidth: int, seed: int = 0) -> sp.csr_matrix:
    """Dense-banded matrix (structural/FEM style, av41092-like density)."""
    if bandwidth < 0 or bandwidth >= n:
        raise ValueError(f"bandwidth must be in [0, n), got {bandwidth}")
    rng = np.random.default_rng(seed)
    diagonals = [rng.standard_normal(n - abs(k)) for k in range(-bandwidth, bandwidth + 1)]
    offsets = list(range(-bandwidth, bandwidth + 1))
    mat = sp.diags(diagonals, offsets, format="csr")
    row_sums = np.asarray(np.abs(mat).sum(axis=1)).ravel()
    return (mat + sp.diags(row_sums + 1.0)).tocsr()


def random_general(
    n: int, density: float, seed: int = 0, diag_dominant: bool = True
) -> sp.csr_matrix:
    """Uniformly random sparse matrix of a given density."""
    if not 0.0 < density <= 1.0:
        raise ValueError(f"density must be in (0, 1], got {density}")
    mat = sp.random(
        n, n, density=density, format="csr",
        random_state=np.random.default_rng(seed), dtype=np.float64,
    )
    if diag_dominant:
        row_sums = np.asarray(np.abs(mat).sum(axis=1)).ravel()
        mat = (mat + sp.diags(row_sums + 1.0)).tocsr()
    return mat


def spd_random(n: int, density: float, seed: int = 0) -> sp.csr_matrix:
    """Random symmetric positive-definite matrix of roughly given density."""
    half = sp.random(
        n, n, density=density / 2.0, format="csr",
        random_state=np.random.default_rng(seed), dtype=np.float64,
    )
    sym = half + half.T
    row_sums = np.asarray(np.abs(sym).sum(axis=1)).ravel()
    return (sym + sp.diags(row_sums + 1.0)).tocsr()


def kronecker_graph(scale: int, edge_factor: int = 8, seed: int = 0) -> sp.csr_matrix:
    """Graph500-style stochastic Kronecker graph adjacency (power-law rows).

    Produces the heavy-tailed row-length distributions typical of social
    network matrices in SuiteSparse.
    """
    if scale < 1 or scale > 24:
        raise ValueError(f"scale must be in [1, 24], got {scale}")
    rng = np.random.default_rng(seed)
    n = 1 << scale
    num_edges = n * edge_factor
    a, b, c = 0.57, 0.19, 0.19
    rows = np.zeros(num_edges, dtype=np.int64)
    cols = np.zeros(num_edges, dtype=np.int64)
    for level in range(scale):
        r = rng.random(num_edges)
        bit_row = (r > a + b).astype(np.int64)
        r2 = rng.random(num_edges)
        threshold = np.where(bit_row == 0, b / (a + b), c / (1 - a - b))
        bit_col = (r2 < threshold).astype(np.int64)
        rows |= bit_row << level
        cols |= bit_col << level
    vals = np.ones(num_edges)
    mat = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
    mat.sum_duplicates()
    mat.data[:] = 1.0
    row_sums = np.asarray(mat.sum(axis=1)).ravel()
    return (mat + sp.diags(row_sums + 1.0)).tocsr()
