"""Matrix attribute reporting for the benchmark tables."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


def matrix_stats(matrix) -> dict:
    """Attributes of a sparse matrix, as reported in the paper's Table 2.

    Args:
        matrix: SciPy sparse matrix or engine sparse matrix.

    Returns:
        Dict with rows, cols, nnz, density, avg/max row nnz, imbalance
        (max/mean row nnz), and whether the pattern is symmetric.
    """
    if hasattr(matrix, "_scipy_view"):
        matrix = matrix._scipy_view()
    csr = sp.csr_matrix(matrix)
    rows, cols = csr.shape
    nnz = csr.nnz
    row_nnz = np.diff(csr.indptr)
    avg = float(row_nnz.mean()) if rows else 0.0
    mx = int(row_nnz.max()) if rows else 0
    density = nnz / (rows * cols) if rows and cols else 0.0
    pattern_symmetric = False
    if rows == cols:
        pattern = csr.copy()
        pattern.data = np.ones_like(pattern.data)
        diff = pattern - pattern.T
        pattern_symmetric = diff.nnz == 0
    return {
        "rows": rows,
        "cols": cols,
        "nnz": int(nnz),
        "density": density,
        "avg_row_nnz": avg,
        "max_row_nnz": mx,
        "imbalance": (mx / avg) if avg > 0 else 1.0,
        "pattern_symmetric": pattern_symmetric,
    }
