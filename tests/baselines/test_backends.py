"""Backend tests: numerics identical across libraries, timing profiles
reproduce the paper's relationships."""

import numpy as np
import pytest

from repro.baselines import (
    CupyBackend,
    GinkgoNativeBackend,
    PyGinkgoBackend,
    PyTorchBackend,
    ScipyBackend,
    TensorFlowBackend,
)
from repro.bench.timing import measure_spmv, spmv_gflops
from repro.ginkgo.exceptions import NotSupported
from repro.perfmodel.specs import AMD_MI100, INTEL_XEON_8368, NVIDIA_A100
from repro.suitesparse import generators as gen

ALL_BACKENDS = [
    ScipyBackend,
    CupyBackend,
    PyTorchBackend,
    TensorFlowBackend,
    PyGinkgoBackend,
    GinkgoNativeBackend,
]


@pytest.fixture
def medium_matrix():
    return gen.mesh_delaunay(3000, seed=11)


class TestNumericalAgreement:
    @pytest.mark.parametrize("backend_cls", ALL_BACKENDS)
    def test_spmv_values_identical(self, backend_cls, medium_matrix, rng):
        backend = backend_cls(noisy=False)
        fmt = "coo" if backend_cls is TensorFlowBackend else "csr"
        handle = backend.prepare(medium_matrix, fmt, np.float64)
        x = rng.standard_normal(medium_matrix.shape[1])
        np.testing.assert_allclose(
            backend.spmv(handle, x), medium_matrix @ x, rtol=1e-12
        )

    @pytest.mark.parametrize(
        "backend_cls", [ScipyBackend, CupyBackend, PyGinkgoBackend]
    )
    @pytest.mark.parametrize("solver", ["cg", "cgs", "gmres"])
    def test_solvers_reduce_residual(
        self, backend_cls, solver, spd_small
    ):
        backend = backend_cls(noisy=False)
        handle = backend.prepare(spd_small, "csr", np.float64)
        b = np.ones(spd_small.shape[0])
        result = backend.run_solver(handle, solver, b, 25)
        x = np.asarray(result["x"]).reshape(-1)
        res = np.linalg.norm(b - spd_small @ x)
        assert res < 1e-6 * np.linalg.norm(b)

    def test_cupy_and_ginkgo_cg_agree(self, spd_small):
        cp = CupyBackend(noisy=False)
        gk = PyGinkgoBackend(noisy=False)
        b = np.ones(spd_small.shape[0])
        x_cp = cp.run_solver(
            cp.prepare(spd_small, "csr", np.float64), "cg", b, 10
        )["x"].reshape(-1)
        x_gk = gk.run_solver(
            gk.prepare(spd_small, "csr", np.float64), "cg", b, 10
        )["x"].reshape(-1)
        np.testing.assert_allclose(x_cp, x_gk, rtol=1e-8)


class TestFormatAndSolverSupport:
    def test_tensorflow_rejects_csr(self, medium_matrix):
        backend = TensorFlowBackend(noisy=False)
        with pytest.raises(NotSupported, match="format"):
            backend.prepare(medium_matrix, "csr")

    def test_pytorch_has_no_solvers(self, medium_matrix):
        backend = PyTorchBackend(noisy=False)
        handle = backend.prepare(medium_matrix, "csr", np.float64)
        with pytest.raises(NotSupported, match="solver"):
            backend.run_solver(handle, "cg", np.ones(3000), 5)

    def test_cupy_has_no_bicgstab(self, medium_matrix):
        backend = CupyBackend(noisy=False)
        handle = backend.prepare(medium_matrix, "csr", np.float64)
        with pytest.raises(NotSupported):
            backend.run_solver(handle, "bicgstab", np.ones(3000), 5)

    def test_pyginkgo_supports_all_ginkgo_formats(self):
        assert set(PyGinkgoBackend.supported_formats) == {
            "csr", "coo", "ell", "sellp", "hybrid",
        }


class TestPaperRelationships:
    def test_gpu_spmv_ordering(self, rng):
        # Fig 3a ordering at large NNZ: pyGinkgo > PyTorch > CuPy > TF.
        matrix = gen.random_general(40000, 0.001, seed=21)
        x = rng.standard_normal(matrix.shape[1]).astype(np.float32)
        times = {}
        for cls, fmt in [
            (PyGinkgoBackend, "csr"),
            (PyTorchBackend, "csr"),
            (CupyBackend, "csr"),
            (TensorFlowBackend, "coo"),
        ]:
            backend = cls(spec=NVIDIA_A100, noisy=False)
            handle = backend.prepare(matrix, fmt, np.float32)
            times[cls.__name__] = measure_spmv(backend, handle, x, 3)
        assert (
            times["PyGinkgoBackend"]
            < times["PyTorchBackend"]
            < times["CupyBackend"]
            < times["TensorFlowBackend"]
        )

    def test_scipy_wins_single_threaded_cpu(self, rng):
        # Paper 6.1.2: SciPy is the fastest on one CPU thread.
        matrix = gen.mesh_delaunay(20000, seed=22)
        x = rng.standard_normal(matrix.shape[1]).astype(np.float32)
        sc = ScipyBackend(noisy=False)
        gk = PyGinkgoBackend(
            spec=INTEL_XEON_8368, num_threads=1, noisy=False
        )
        t_sc = measure_spmv(sc, sc.prepare(matrix, "csr", np.float32), x, 3)
        t_gk = measure_spmv(gk, gk.prepare(matrix, "csr", np.float32), x, 3)
        assert t_sc < t_gk * 1.3  # at worst comparable; typically faster

    def test_pyginkgo_scales_with_threads(self, rng):
        matrix = gen.mesh_delaunay(20000, seed=23)
        x = rng.standard_normal(matrix.shape[1]).astype(np.float32)
        times = []
        for threads in (1, 8, 32):
            backend = PyGinkgoBackend(
                spec=INTEL_XEON_8368, num_threads=threads, noisy=False
            )
            handle = backend.prepare(matrix, "csr", np.float32)
            times.append(measure_spmv(backend, handle, x, 3))
        assert times[0] > times[1] > times[2]

    def test_a100_faster_than_mi100(self, rng):
        # Fig 5a: A100 slightly ahead, especially at large NNZ.
        matrix = gen.random_general(60000, 0.001, seed=24)
        x = rng.standard_normal(matrix.shape[1]).astype(np.float32)
        a100 = PyGinkgoBackend(spec=NVIDIA_A100, noisy=False)
        mi100 = PyGinkgoBackend(spec=AMD_MI100, noisy=False)
        t_a = measure_spmv(a100, a100.prepare(matrix, "csr", np.float32), x, 3)
        t_m = measure_spmv(mi100, mi100.prepare(matrix, "csr", np.float32), x, 3)
        assert t_a < t_m

    def test_binding_overhead_only_on_pyginkgo(self, medium_matrix, rng):
        x = rng.standard_normal(medium_matrix.shape[1]).astype(np.float32)
        py = PyGinkgoBackend(noisy=False, seed=1)
        native = GinkgoNativeBackend(noisy=False, seed=1)
        t_py = measure_spmv(
            py, py.prepare(medium_matrix, "csr", np.float32), x, 10
        )
        t_native = measure_spmv(
            native, native.prepare(medium_matrix, "csr", np.float32), x, 10
        )
        assert t_py > t_native

    def test_solver_speedup_ordering_cgs_over_cg(self, spd_small):
        # Fig 3c: CGS shows the largest pyGinkgo advantage over CuPy.
        b = np.ones(spd_small.shape[0])
        ratios = {}
        for solver in ("cg", "cgs", "gmres"):
            gk = PyGinkgoBackend(noisy=False)
            cp = CupyBackend(noisy=False)
            r_gk = gk.run_solver(
                gk.prepare(spd_small, "csr", np.float64), solver, b, 20
            )
            r_cp = cp.run_solver(
                cp.prepare(spd_small, "csr", np.float64), solver, b, 20
            )
            ratios[solver] = (
                r_cp["time_per_iteration"] / r_gk["time_per_iteration"]
            )
        assert ratios["cgs"] > ratios["cg"] > 1.5
        assert ratios["gmres"] < 1.1  # CuPy slightly faster for GMRES

    def test_gflops_helper(self):
        assert spmv_gflops(1_000_000, 1e-3) == pytest.approx(2.0)
        assert spmv_gflops(100, 0.0) == 0.0
