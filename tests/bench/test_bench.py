"""Benchmark-harness tests: the figure entry points produce data with the
paper's qualitative shapes (on reduced suites)."""

import numpy as np
import pytest

from repro.bench import (
    fig3a_spmv_gpu,
    fig3b_spmv_cpu,
    fig3c_solver_gpu,
    fig5a_gpu_formats,
    fig5b_overhead,
    fig5c_timediff,
    format_series,
    format_table,
    geometric_mean,
    solver_cpu_comparison,
    table1_types,
    table2_matrices,
)
from repro.suitesparse import overhead_suite, solver_suite, spmv_suite


@pytest.fixture(scope="module")
def small_spmv_suite():
    return spmv_suite(count=5, min_nnz=2e4, max_nnz=8e5)


@pytest.fixture(scope="module")
def small_solver_suite():
    return solver_suite(count=4, min_nnz=2e4, max_nnz=3e5)


@pytest.fixture(scope="module")
def small_overhead_suite():
    return overhead_suite(count=5, min_nnz=2e4, max_nnz=5e6)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [(1, 2.5), (10, 0.00001)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]
        assert "1.000e-05" in text

    def test_format_series(self):
        text = format_series(
            {"x2": [(1, 2.0), (2, 4.0)], "x3": [(1, 3.0)]}, x_label="n"
        )
        assert "n" in text
        assert "-" in text  # missing point placeholder

    def test_geometric_mean(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)
        assert geometric_mean([2, 0, -5]) == pytest.approx(2.0)
        assert np.isnan(geometric_mean([]))


class TestTables:
    def test_table1_rows(self):
        result = table1_types()
        assert result["rows"] == [
            (2, "half", ""), (4, "float", "int32"), (8, "double", "int64"),
        ]
        assert "Table 1" in result["text"]

    def test_table2_six_rows(self):
        result = table2_matrices(scale=0.02)
        assert len(result["rows"]) == 6
        labels = [row[0] for row in result["rows"]]
        assert labels == list("ABCDEF")


class TestFig3a:
    def test_shapes(self, small_spmv_suite):
        result = fig3a_spmv_gpu(small_spmv_suite, reps=3)
        series = result["series"]
        assert set(series) == {"pyGinkgo", "PyTorch", "CuPy", "TensorFlow"}
        # pyGinkgo consistently outperforms the alternatives (paper 6.1.1).
        for i in range(len(small_spmv_suite)):
            py = series["pyGinkgo"][i][1]
            assert py >= series["CuPy"][i][1]
            assert py >= series["TensorFlow"][i][1]
        # Speedup grows with NNZ.
        py_speedups = [y for _, y in series["pyGinkgo"]]
        assert py_speedups[-1] > py_speedups[0]


class TestFig3b:
    def test_thread_scaling_shape(self, small_spmv_suite):
        result = fig3b_spmv_cpu(
            small_spmv_suite, threads=(1, 8, 32), reps=3
        )
        series = result["series"]
        # More threads -> more speedup, for the largest matrix.
        last = -1
        s1 = series["pyGinkgo 1T"][last][1]
        s8 = series["pyGinkgo 8T"][last][1]
        s32 = series["pyGinkgo 32T"][last][1]
        assert s1 < s8 < s32
        # Paper: 7-35x for high-NNZ matrices at 32 threads.
        assert 4 < s32 < 50
        # SciPy wins single-threaded (speedup < ~1).
        assert s1 < 1.5


class TestFig3c:
    def test_solver_speedups(self, small_solver_suite):
        result = fig3c_solver_gpu(small_solver_suite, iterations=40)
        series = result["series"]
        for i in range(len(small_solver_suite)):
            cg = series["CG"][i][1]
            cgs = series["CGS"][i][1]
            gmres = series["GMRES"][i][1]
            # Paper 6.2.1: CGS highest, CG moderate (~2.5x), GMRES
            # slightly below 1 (CuPy faster).
            assert cgs > cg > 1.3
            assert gmres < 1.15


class TestFig5:
    def test_fig5a_device_and_format_ordering(self, small_overhead_suite):
        result = fig5a_gpu_formats(small_overhead_suite, reps=3)
        series = result["series"]
        # For the largest matrix: A100 >= MI100 and CSR >= COO.
        a100_csr = series["A100 CSR"][-1][1]
        a100_coo = series["A100 COO"][-1][1]
        mi100_csr = series["MI100 CSR"][-1][1]
        assert a100_csr > mi100_csr
        assert a100_csr > a100_coo

    def test_fig5b_overhead_amortises(self, small_overhead_suite):
        result = fig5b_overhead(small_overhead_suite, reps=12)
        for name, points in result["series"].items():
            small_nnz_overhead = points[0][1]
            large_nnz_overhead = points[-1][1]
            assert small_nnz_overhead > large_nnz_overhead
            assert large_nnz_overhead < 15.0  # <10-15% at 5e6+ nnz

    def test_fig5c_time_difference_magnitudes(self, small_overhead_suite):
        result = fig5c_timediff(small_overhead_suite, reps=12)
        diffs = [
            abs(y) for points in result["series"].values() for _, y in points
        ]
        # Paper: 1e-7 to 1e-5 s (NVIDIA), up to 1e-4 s (AMD).
        assert max(diffs) < 1e-3
        assert min(diffs) < 1e-4


class TestCpuSolvers:
    def test_paper_3_to_8x_band(self, small_solver_suite):
        result = solver_cpu_comparison(
            small_solver_suite, solvers=("cg",), iterations=30
        )
        speedups = [y for _, y in result["series"]["CG"]]
        # Paper 6.2.2: around 3-8x faster than SciPy for CG.
        assert all(1.5 < s < 20 for s in speedups)
        assert any(3 <= s <= 8 for s in speedups)
