"""bench_report must survive malformed BENCH_*.json files gracefully."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_report",
    Path(__file__).resolve().parents[2] / "benchmarks" / "bench_report.py",
)
bench_report = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_report)


def _healthy(tmp_path, name="BENCH_good.json", failures=()):
    payload = {
        "benchmark": name.removeprefix("BENCH_").removesuffix(".json"),
        "speedup": 2.0,
        "min_speedup_gate": 1.5,
        "failures": list(failures),
    }
    (tmp_path / name).write_text(json.dumps(payload))
    return payload


class TestCollect:
    def test_truncated_file_skipped_with_warning(self, tmp_path, capsys):
        _healthy(tmp_path)
        (tmp_path / "BENCH_broken.json").write_text('{"benchmark": "tr')
        skipped = []
        reports = bench_report.collect(tmp_path, skipped=skipped)
        assert [r["benchmark"] for r in reports] == ["good"]
        assert skipped == ["BENCH_broken.json"]
        assert "skipping BENCH_broken.json" in capsys.readouterr().err

    def test_empty_file_skipped(self, tmp_path):
        _healthy(tmp_path)
        (tmp_path / "BENCH_empty.json").write_text("")
        skipped = []
        reports = bench_report.collect(tmp_path, skipped=skipped)
        assert len(reports) == 1
        assert skipped == ["BENCH_empty.json"]

    def test_non_object_json_skipped(self, tmp_path, capsys):
        _healthy(tmp_path)
        (tmp_path / "BENCH_list.json").write_text("[1, 2, 3]")
        skipped = []
        reports = bench_report.collect(tmp_path, skipped=skipped)
        assert len(reports) == 1
        assert skipped == ["BENCH_list.json"]
        assert "expected a JSON object" in capsys.readouterr().err


class TestMainExitCodes:
    def _run(self, monkeypatch, tmp_path, *extra):
        monkeypatch.setattr(
            sys, "argv", ["bench_report.py", "--root", str(tmp_path), *extra]
        )
        return bench_report.main()

    def test_healthy_plus_broken_exits_zero(
        self, monkeypatch, tmp_path, capsys
    ):
        _healthy(tmp_path)
        (tmp_path / "BENCH_broken.json").write_text("{bad json")
        assert self._run(monkeypatch, tmp_path) == 0
        out = capsys.readouterr().out
        assert "good" in out
        assert "1 unreadable report(s) skipped" in out

    def test_zero_parseable_exits_nonzero(self, monkeypatch, tmp_path, capsys):
        (tmp_path / "BENCH_only.json").write_text("{nope")
        assert self._run(monkeypatch, tmp_path) == 1
        assert "no parseable BENCH_*.json" in capsys.readouterr().err

    def test_no_reports_at_all_exits_nonzero(
        self, monkeypatch, tmp_path, capsys
    ):
        assert self._run(monkeypatch, tmp_path) == 1
        assert "no BENCH_*.json reports found" in capsys.readouterr().err

    def test_parsed_failures_still_exit_nonzero(self, monkeypatch, tmp_path):
        _healthy(tmp_path, "BENCH_bad.json", failures=["gate missed"])
        assert self._run(monkeypatch, tmp_path) == 1

    def test_combined_json_excludes_broken(self, monkeypatch, tmp_path):
        _healthy(tmp_path)
        (tmp_path / "BENCH_broken.json").write_text("")
        out_file = tmp_path / "combined.json"
        assert self._run(monkeypatch, tmp_path, "--json", str(out_file)) == 0
        combined = json.loads(out_file.read_text())
        assert [r["benchmark"] for r in combined] == ["good"]
