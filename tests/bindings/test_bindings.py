"""Bindings-layer tests: pre-instantiated symbols and overhead accounting."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import bindings
from repro.bindings import (
    binding_names,
    binding_overhead,
    binding_overhead_enabled,
    charge_binding,
    get_binding,
    reset_models,
    set_binding_overhead,
)
from repro.bindings.overhead import _device_family, overhead_model_for
from repro.ginkgo.executor import CudaExecutor, HipExecutor, ReferenceExecutor
from repro.ginkgo.matrix import Coo, Csr, Dense
from repro.perfmodel.specs import AMD_MI100, DeviceSpec


@pytest.fixture(autouse=True)
def _overhead_on():
    """Keep the global switch in its default state around each test."""
    set_binding_overhead(True)
    yield
    set_binding_overhead(True)


class TestRegistry:
    def test_all_type_combinations_instantiated(self):
        names = set(binding_names())
        # Paper section 5.1: pre-instantiation of every template combo.
        for fmt in ("csr", "coo", "ell", "sellp", "hybrid"):
            for vt in ("half", "float", "double"):
                for it in ("int32", "int64"):
                    assert f"{fmt}_{vt}_{it}" in names
                    assert f"read_{fmt}_{vt}_{it}" in names

    def test_dense_per_value_type(self):
        names = set(binding_names())
        for vt in ("half", "float", "double"):
            assert f"dense_{vt}" in names
            assert f"dense_empty_{vt}" in names

    def test_solver_factories_suffixed(self):
        names = set(binding_names())
        for solver in ("cg", "fcg", "cgs", "bicg", "bicgstab", "gmres",
                       "minres", "ir"):
            for vt in ("half", "float", "double"):
                assert f"{solver}_factory_{vt}" in names

    def test_executor_classes_exposed(self):
        assert bindings.CUDA is CudaExecutor
        assert bindings.HIP is HipExecutor
        assert bindings.Reference is ReferenceExecutor

    def test_attribute_access(self):
        assert bindings.csr_double_int32 is get_binding("csr_double_int32")

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            bindings.csr_quad_int128

    def test_dir_lists_bindings(self):
        assert "dense_float" in dir(bindings)


class TestTypedConstruction:
    def test_dense_binding_casts(self, ref):
        d = bindings.dense_float(ref, np.arange(4.0))
        assert isinstance(d, Dense)
        assert d.dtype == np.float32

    def test_sparse_binding_types(self, ref, general_small):
        mat = bindings.csr_half_int64(ref, general_small)
        assert isinstance(mat, Csr)
        assert mat.dtype == np.float16
        assert mat.index_dtype == np.int64

    def test_coo_binding(self, ref, general_small):
        mat = bindings.coo_double_int32(ref, general_small)
        assert isinstance(mat, Coo)
        assert mat.nnz == general_small.nnz

    def test_read_binding(self, ref, tmp_path, general_small):
        from repro.ginkgo.mtx_io import write_mtx

        path = tmp_path / "m.mtx"
        write_mtx(path, general_small)
        mat = bindings.read_csr_double_int32(ref, path)
        assert mat.nnz == general_small.nnz


class TestOverheadAccounting:
    def test_binding_call_advances_clock(self, ref):
        before = ref.clock.now
        bindings.dense_double(ref, np.arange(3.0))
        after_alloc = ref.clock.now
        assert after_alloc > before

    def test_disabled_overhead_is_cheaper(self):
        times = {}
        for enabled in (True, False):
            exec_ = ReferenceExecutor.create(noisy=False)
            set_binding_overhead(enabled)
            before = exec_.clock.now
            charge_binding(exec_)
            times[enabled] = exec_.clock.now - before
        assert times[False] == 0.0
        assert times[True] > 0.0

    def test_switch_reports_state(self):
        set_binding_overhead(False)
        assert not binding_overhead_enabled()
        set_binding_overhead(True)
        assert binding_overhead_enabled()

    def test_amd_overhead_exceeds_nvidia(self):
        cuda = CudaExecutor.create(noisy=False)
        hip = HipExecutor.create(noisy=False)
        assert (
            overhead_model_for(hip).base_overhead
            > overhead_model_for(cuda).base_overhead
        )

    def test_charge_binding_none_executor_is_noop(self):
        assert charge_binding(None) == 0.0

    def test_overhead_returned_value_matches_clock(self):
        exec_ = CudaExecutor.create(noisy=False)
        before = exec_.clock.now
        charged = charge_binding(exec_, num_arguments=3)
        assert exec_.clock.now - before == pytest.approx(charged)


class TestDeviceFamilyDispatch:
    # Regression: the family used to be inferred from the display name,
    # so an AMD spec whose name does not spell out "AMD" was silently
    # calibrated (and dispatched) as NVIDIA.
    AMD_UNBRANDED = DeviceSpec(
        name="Instinct MI250X",
        kind="gpu",
        memory_bandwidth=3277e9,
        peak_flops={"float16": 383e12, "float32": 47.9e12, "float64": 47.9e12},
        vendor="amd",
    )

    def test_vendor_field_beats_display_name(self):
        exec_ = HipExecutor.create(noisy=False, spec=self.AMD_UNBRANDED)
        assert _device_family(exec_) == "gpu-amd"

    def test_unbranded_amd_spec_gets_amd_calibration(self):
        unbranded = HipExecutor.create(noisy=False, spec=self.AMD_UNBRANDED)
        branded = HipExecutor.create(noisy=False, spec=AMD_MI100)
        assert (
            overhead_model_for(unbranded).base_overhead
            == overhead_model_for(branded).base_overhead
        )

    def test_backend_dispatches_unbranded_amd_to_hip(self):
        from repro.baselines.ginkgo_backend import PyGinkgoBackend

        backend = PyGinkgoBackend(spec=self.AMD_UNBRANDED, noisy=False)
        assert isinstance(backend.executor, HipExecutor)

    def test_nameless_vendor_falls_back_to_name(self):
        legacy = DeviceSpec(
            name="AMD Radeon VII", kind="gpu", memory_bandwidth=1024e9,
            peak_flops={"float64": 3.4e12},
        )
        exec_ = HipExecutor.create(noisy=False, spec=legacy)
        assert _device_family(exec_) == "gpu-amd"


class TestGlobalStateHygiene:
    def test_context_manager_restores_state(self):
        assert binding_overhead_enabled()
        with binding_overhead(False):
            assert not binding_overhead_enabled()
            with binding_overhead(True):
                assert binding_overhead_enabled()
            assert not binding_overhead_enabled()
        assert binding_overhead_enabled()

    def test_context_manager_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with binding_overhead(False):
                raise RuntimeError("boom")
        assert binding_overhead_enabled()

    def test_context_manager_suppresses_charge(self, ref):
        with binding_overhead(False):
            assert charge_binding(ref) == 0.0
        assert charge_binding(ref) > 0.0

    def test_reset_models_restores_enable_switch(self):
        set_binding_overhead(False)
        reset_models()
        assert binding_overhead_enabled()

    def test_reset_models_restarts_jitter_streams(self):
        def consume():
            reset_models()
            exec_ = CudaExecutor.create(noisy=False)
            return [charge_binding(exec_) for _ in range(5)]

        assert consume() == consume()
