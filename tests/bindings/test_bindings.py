"""Bindings-layer tests: pre-instantiated symbols and overhead accounting."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import bindings
from repro.bindings import (
    binding_names,
    binding_overhead_enabled,
    charge_binding,
    get_binding,
    set_binding_overhead,
)
from repro.bindings.overhead import overhead_model_for
from repro.ginkgo.executor import CudaExecutor, HipExecutor, ReferenceExecutor
from repro.ginkgo.matrix import Coo, Csr, Dense


@pytest.fixture(autouse=True)
def _overhead_on():
    """Keep the global switch in its default state around each test."""
    set_binding_overhead(True)
    yield
    set_binding_overhead(True)


class TestRegistry:
    def test_all_type_combinations_instantiated(self):
        names = set(binding_names())
        # Paper section 5.1: pre-instantiation of every template combo.
        for fmt in ("csr", "coo", "ell", "sellp", "hybrid"):
            for vt in ("half", "float", "double"):
                for it in ("int32", "int64"):
                    assert f"{fmt}_{vt}_{it}" in names
                    assert f"read_{fmt}_{vt}_{it}" in names

    def test_dense_per_value_type(self):
        names = set(binding_names())
        for vt in ("half", "float", "double"):
            assert f"dense_{vt}" in names
            assert f"dense_empty_{vt}" in names

    def test_solver_factories_suffixed(self):
        names = set(binding_names())
        for solver in ("cg", "fcg", "cgs", "bicg", "bicgstab", "gmres",
                       "minres", "ir"):
            for vt in ("half", "float", "double"):
                assert f"{solver}_factory_{vt}" in names

    def test_executor_classes_exposed(self):
        assert bindings.CUDA is CudaExecutor
        assert bindings.HIP is HipExecutor
        assert bindings.Reference is ReferenceExecutor

    def test_attribute_access(self):
        assert bindings.csr_double_int32 is get_binding("csr_double_int32")

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            bindings.csr_quad_int128

    def test_dir_lists_bindings(self):
        assert "dense_float" in dir(bindings)


class TestTypedConstruction:
    def test_dense_binding_casts(self, ref):
        d = bindings.dense_float(ref, np.arange(4.0))
        assert isinstance(d, Dense)
        assert d.dtype == np.float32

    def test_sparse_binding_types(self, ref, general_small):
        mat = bindings.csr_half_int64(ref, general_small)
        assert isinstance(mat, Csr)
        assert mat.dtype == np.float16
        assert mat.index_dtype == np.int64

    def test_coo_binding(self, ref, general_small):
        mat = bindings.coo_double_int32(ref, general_small)
        assert isinstance(mat, Coo)
        assert mat.nnz == general_small.nnz

    def test_read_binding(self, ref, tmp_path, general_small):
        from repro.ginkgo.mtx_io import write_mtx

        path = tmp_path / "m.mtx"
        write_mtx(path, general_small)
        mat = bindings.read_csr_double_int32(ref, path)
        assert mat.nnz == general_small.nnz


class TestOverheadAccounting:
    def test_binding_call_advances_clock(self, ref):
        before = ref.clock.now
        bindings.dense_double(ref, np.arange(3.0))
        after_alloc = ref.clock.now
        assert after_alloc > before

    def test_disabled_overhead_is_cheaper(self):
        times = {}
        for enabled in (True, False):
            exec_ = ReferenceExecutor.create(noisy=False)
            set_binding_overhead(enabled)
            before = exec_.clock.now
            charge_binding(exec_)
            times[enabled] = exec_.clock.now - before
        assert times[False] == 0.0
        assert times[True] > 0.0

    def test_switch_reports_state(self):
        set_binding_overhead(False)
        assert not binding_overhead_enabled()
        set_binding_overhead(True)
        assert binding_overhead_enabled()

    def test_amd_overhead_exceeds_nvidia(self):
        cuda = CudaExecutor.create(noisy=False)
        hip = HipExecutor.create(noisy=False)
        assert (
            overhead_model_for(hip).base_overhead
            > overhead_model_for(cuda).base_overhead
        )

    def test_charge_binding_none_executor_is_noop(self):
        assert charge_binding(None) == 0.0

    def test_overhead_returned_value_matches_clock(self):
        exec_ = CudaExecutor.create(noisy=False)
        before = exec_.clock.now
        charged = charge_binding(exec_, num_arguments=3)
        assert exec_.clock.now - before == pytest.approx(charged)
