"""Pre-resolved binding dispatch cache."""

import numpy as np
import pytest

from repro import bindings
from repro.bindings import dispatch
from repro.bindings.overhead import device_family, reset_models
from repro.ginkgo import cachestats
from repro.ginkgo.exceptions import GinkgoError
from repro.ginkgo.executor import CudaExecutor, HipExecutor, ReferenceExecutor


class TestResolve:
    def test_returns_registry_wrapper(self):
        resolved = dispatch.resolve("gmres_factory", np.float64)
        assert resolved is bindings.get_binding("gmres_factory_double")

    def test_repeat_is_cached(self):
        first = dispatch.resolve("csr", np.float64, np.int32)
        assert dispatch.resolve("csr", np.float64, np.int32) is first
        assert dispatch.cache_size() == 1

    def test_suffix_strings_and_dtypes_agree(self):
        assert dispatch.resolve("csr", "double", "int32") is dispatch.resolve(
            "csr", np.float64, np.int32
        )

    def test_symbol_for(self):
        assert dispatch.symbol_for("gmres_factory", np.float32) == (
            "gmres_factory_float"
        )
        assert dispatch.symbol_for("csr", "half", "int64") == "csr_half_int64"
        assert dispatch.symbol_for("CUDA") == "CUDA"

    def test_unknown_symbol_raises(self):
        with pytest.raises(GinkgoError, match="no binding symbol"):
            dispatch.resolve("nonsense_factory", np.float64)

    def test_unknown_dtype_raises(self):
        with pytest.raises(GinkgoError, match="value"):
            dispatch.resolve("csr", np.complex128, np.int32)
        with pytest.raises(GinkgoError, match="index"):
            dispatch.resolve("csr", np.float64, np.int16)

    def test_counts_and_clear(self):
        cachestats.reset()
        dispatch.clear()
        dispatch.resolve("cg_factory", np.float64)
        dispatch.resolve("cg_factory", np.float64)
        dispatch.resolve("cg_factory", np.float32)
        hits, misses = cachestats.counts("dispatch")
        assert (hits, misses) == (1, 2)
        dispatch.clear()
        assert dispatch.cache_size() == 0
        dispatch.resolve("cg_factory", np.float64)
        assert cachestats.counts("dispatch") == (1, 3)

    def test_family_pins_cache_key(self):
        cuda = CudaExecutor.create(noisy=False)
        hip = HipExecutor.create(noisy=False)
        a = dispatch.resolve("cg_factory", np.float64, exec_=cuda)
        b = dispatch.resolve("cg_factory", np.float64, exec_=hip)
        assert a is b  # same wrapper either way...
        assert dispatch.cache_size() == 2  # ...but per-family entries


class TestChargePreserved:
    def test_resolved_wrapper_still_charges_binding(self):
        exec_ = CudaExecutor.create(noisy=False)
        factory = dispatch.resolve("dense", np.float64, exec_=exec_)
        t0 = exec_.clock.now
        factory(exec_, np.ones((3, 1)))
        assert exec_.clock.now > t0  # binding crossing charged

    def test_warm_and_cold_charge_identically(self):
        def charge(warm):
            reset_models()
            dispatch.clear()
            exec_ = CudaExecutor.create(noisy=False)
            if warm:
                dispatch.resolve("dense", np.float64, exec_=exec_)
            binding = dispatch.resolve("dense", np.float64, exec_=exec_)
            t0 = exec_.clock.now
            binding(exec_, np.ones((3, 1)))
            return exec_.clock.now - t0

        assert charge(warm=True) == charge(warm=False)


class TestDeviceFamilyMemo:
    def test_family_memoized_on_executor(self):
        exec_ = CudaExecutor.create(noisy=False)
        assert not hasattr(exec_, "_binding_family")
        assert device_family(exec_) == "gpu-nvidia"
        assert exec_._binding_family == "gpu-nvidia"
        assert device_family(exec_) == "gpu-nvidia"

    def test_family_survives_reset_models(self):
        exec_ = ReferenceExecutor.create(noisy=False)
        assert device_family(exec_) == "cpu"
        reset_models()
        assert exec_._binding_family == "cpu"
        assert device_family(exec_) == "cpu"

    def test_families_by_executor_kind(self):
        assert device_family(CudaExecutor.create(noisy=False)) == "gpu-nvidia"
        assert device_family(HipExecutor.create(noisy=False)) == "gpu-amd"
        assert device_family(ReferenceExecutor.create(noisy=False)) == "cpu"
