"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.bindings import dispatch
from repro.bindings.overhead import reset_models
from repro.ginkgo import cachestats, lazy
from repro.ginkgo.executor import (
    CudaExecutor,
    HipExecutor,
    OmpExecutor,
    ReferenceExecutor,
)
from repro.perfmodel import SimClock


@pytest.fixture(autouse=True)
def _reset_binding_state():
    """Isolate tests from the bindings' module-global mutable state.

    The overhead layer keeps a process-global enable switch and per-family
    jitter-stream models; a test that flips or consumes them must not
    change what any later test observes.  Global clock tracers are also
    cleared so a leaked profiler cannot observe unrelated tests.
    """
    reset_models()
    dispatch.clear()
    cachestats.reset()
    lazy.reset()
    yield
    reset_models()
    dispatch.clear()
    cachestats.reset()
    lazy.reset()
    SimClock._global_tracers.clear()


@pytest.fixture
def ref():
    """A fresh reference executor with noiseless timing."""
    return ReferenceExecutor.create(noisy=False)


@pytest.fixture
def omp():
    """A fresh OpenMP executor (8 threads, noiseless)."""
    return OmpExecutor.create(num_threads=8, noisy=False)


@pytest.fixture
def cuda():
    """A fresh simulated CUDA executor (noiseless)."""
    return CudaExecutor.create(noisy=False)


@pytest.fixture
def hip():
    """A fresh simulated HIP executor (noiseless)."""
    return HipExecutor.create(noisy=False)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def spd_small():
    """A 60x60 SPD tridiagonal (1-D Poisson + shift)."""
    n = 60
    return sp.diags(
        [-np.ones(n - 1), 4.0 * np.ones(n), -np.ones(n - 1)],
        [-1, 0, 1],
        format="csr",
    )


@pytest.fixture
def general_small(rng):
    """A 50x50 diagonally dominant nonsymmetric sparse matrix."""
    n = 50
    mat = sp.random(
        n, n, density=0.12, format="csr", random_state=rng, dtype=np.float64
    )
    row_sums = np.asarray(np.abs(mat).sum(axis=1)).ravel()
    return (mat + sp.diags(row_sums + 1.0)).tocsr()


@pytest.fixture
def rect_small(rng):
    """A 40x25 rectangular sparse matrix."""
    return sp.random(
        40, 25, density=0.15, format="csr", random_state=rng,
        dtype=np.float64,
    )
