"""pg.read / pg.solver / pg.preconditioner / pg.solve API tests."""

import numpy as np
import pytest

import repro as pg
from repro.ginkgo.config import ConfigError
from repro.ginkgo.exceptions import GinkgoError
from repro.ginkgo.matrix import Coo, Csr, Ell, Hybrid, Sellp
from repro.ginkgo.mtx_io import write_mtx


@pytest.fixture
def mtx_file(tmp_path, spd_small):
    path = tmp_path / "m1.mtx"
    write_mtx(path, spd_small)
    return path


class TestRead:
    def test_read_csr(self, ref, mtx_file, spd_small):
        mtx = pg.read(device=ref, path=mtx_file, dtype="double", format="Csr")
        assert isinstance(mtx, Csr)
        assert mtx.size[0] == spd_small.shape[0]
        assert mtx.nnz == spd_small.nnz

    @pytest.mark.parametrize(
        "fmt,cls",
        [("Coo", Coo), ("Ell", Ell), ("Sellp", Sellp), ("Hybrid", Hybrid)],
    )
    def test_read_other_formats(self, ref, mtx_file, fmt, cls):
        assert isinstance(
            pg.read(device=ref, path=mtx_file, format=fmt), cls
        )

    def test_read_case_insensitive_format(self, ref, mtx_file):
        assert isinstance(pg.read(device=ref, path=mtx_file, format="CSR"), Csr)

    def test_read_dtype(self, ref, mtx_file):
        mtx = pg.read(device=ref, path=mtx_file, dtype="float",
                      index_dtype="int64")
        assert mtx.dtype == np.float32
        assert mtx.index_dtype == np.int64

    def test_read_unknown_format(self, ref, mtx_file):
        with pytest.raises(GinkgoError, match="format"):
            pg.read(device=ref, path=mtx_file, format="Bsr")

    def test_read_requires_path(self, ref):
        with pytest.raises(GinkgoError, match="path"):
            pg.read(device=ref)

    def test_read_by_device_name(self, mtx_file):
        mtx = pg.read(device="cuda", path=mtx_file)
        assert mtx.executor.name == "cuda"

    def test_matrix_from_scipy(self, ref, spd_small):
        mtx = pg.matrix(device=ref, data=spd_small, format="Csr")
        assert mtx.nnz == spd_small.nnz

    def test_write_roundtrip(self, ref, tmp_path, spd_small):
        mtx = pg.matrix(device=ref, data=spd_small)
        out = tmp_path / "out.mtx"
        pg.write(out, mtx)
        again = pg.read(device=ref, path=out)
        assert again.nnz == spd_small.nnz


class TestSolverNamespace:
    @pytest.mark.parametrize(
        "name", ["cg", "fcg", "cgs", "bicg", "bicgstab", "gmres", "minres"]
    )
    def test_each_solver_converges(self, ref, spd_small, rng, name):
        mtx = pg.matrix(device=ref, data=spd_small)
        xstar = rng.standard_normal((spd_small.shape[0], 1))
        b = pg.as_tensor(spd_small @ xstar, device=ref)
        x = pg.as_tensor(device=ref, dim=xstar.shape, fill=0.0)
        solver = getattr(pg.solver, name)(
            ref, mtx, max_iters=500, reduction_factor=1e-10
        )
        logger, result = solver.apply(b, x)
        assert logger.converged
        np.testing.assert_allclose(result.numpy(), xstar, atol=1e-6)

    def test_gmres_returns_logger_and_result(self, ref, spd_small):
        mtx = pg.matrix(device=ref, data=spd_small)
        b = pg.as_tensor(device=ref, dim=(spd_small.shape[0], 1), fill=1.0)
        x = pg.as_tensor(device=ref, dim=(spd_small.shape[0], 1), fill=0.0)
        solver = pg.solver.gmres(ref, mtx, max_iters=1000, krylov_dim=30,
                                 reduction_factor=1e-6)
        logger, result = solver.apply(b, x)
        assert result is x  # solution overwrites the initial guess
        assert logger.num_iterations > 0
        assert logger.residual_norms

    def test_direct(self, ref, general_small, rng):
        mtx = pg.matrix(device=ref, data=general_small)
        xstar = rng.standard_normal((general_small.shape[0], 1))
        b = pg.as_tensor(general_small @ xstar, device=ref)
        x = pg.as_tensor(device=ref, dim=xstar.shape, fill=0.0)
        _, result = pg.solver.direct(ref, mtx).apply(b, x)
        np.testing.assert_allclose(result.numpy(), xstar, atol=1e-8)

    def test_half_precision_dispatch(self, ref, spd_small):
        mtx = pg.matrix(device=ref, data=spd_small, dtype="half")
        b = pg.as_tensor(device=ref, dim=(spd_small.shape[0], 1),
                         dtype="half", fill=1.0)
        x = pg.as_tensor(device=ref, dim=(spd_small.shape[0], 1),
                         dtype="half", fill=0.0)
        solver = pg.solver.cg(ref, mtx, max_iters=100,
                              reduction_factor=1e-2)
        logger, result = solver.apply(b, x)
        assert result.dtype == np.float16


class TestPreconditionerNamespace:
    def test_ilu(self, ref, general_small):
        mtx = pg.matrix(device=ref, data=general_small)
        precond = pg.preconditioner.Ilu(ref, mtx)
        solver = pg.solver.gmres(ref, mtx, precond, max_iters=300,
                                 reduction_factor=1e-10)
        b = pg.as_tensor(device=ref, dim=(general_small.shape[0], 1), fill=1.0)
        x = pg.as_tensor(device=ref, dim=(general_small.shape[0], 1), fill=0.0)
        logger, _ = solver.apply(b, x)
        assert logger.converged

    def test_ic_and_jacobi_and_isai(self, ref, spd_small):
        mtx = pg.matrix(device=ref, data=spd_small)
        for precond in (
            pg.preconditioner.Ic(ref, mtx),
            pg.preconditioner.Jacobi(ref, mtx),
            pg.preconditioner.Jacobi(ref, mtx, max_block_size=4),
            pg.preconditioner.Isai(ref, mtx),
        ):
            solver = pg.solver.cg(ref, mtx, precond, max_iters=300,
                                  reduction_factor=1e-9)
            b = pg.as_tensor(device=ref, dim=(spd_small.shape[0], 1), fill=1.0)
            x = pg.as_tensor(device=ref, dim=(spd_small.shape[0], 1), fill=0.0)
            logger, _ = solver.apply(b, x)
            assert logger.converged


class TestSolveEntryPoint:
    def test_listing2_flow(self, ref, spd_small):
        mtx = pg.matrix(device=ref, data=spd_small)
        b = pg.as_tensor(device=ref, dim=(spd_small.shape[0], 1), fill=1.0)
        logger, x = pg.solve(
            ref, mtx, b,
            solver="gmres",
            preconditioner={"type": "preconditioner::Jacobi",
                            "max_block_size": 1},
            max_iters=1000,
            reduction_factor=1e-6,
            krylov_dim=30,
        )
        assert logger.converged
        residual = spd_small @ x.numpy() - 1.0
        assert np.linalg.norm(residual) <= 1e-5 * np.sqrt(
            spd_small.shape[0]
        )

    def test_solve_default_initial_guess(self, ref, spd_small):
        mtx = pg.matrix(device=ref, data=spd_small)
        b = pg.as_tensor(device=ref, dim=(spd_small.shape[0], 1), fill=1.0)
        logger, x = pg.solve(ref, mtx, b, solver="cg")
        assert logger.converged

    def test_solve_preconditioner_by_name(self, ref, spd_small):
        mtx = pg.matrix(device=ref, data=spd_small)
        b = pg.as_tensor(device=ref, dim=(spd_small.shape[0], 1), fill=1.0)
        logger, _ = pg.solve(ref, mtx, b, solver="cg", preconditioner="ic")
        assert logger.converged

    def test_build_config_shape(self):
        config = pg.build_config(
            solver="gmres", preconditioner="jacobi", max_iters=500,
            reduction_factor=1e-8, krylov_dim=20,
        )
        assert config["type"] == "gmres"
        assert config["krylov_dim"] == 20
        assert config["preconditioner"] == {"type": "jacobi"}
        kinds = [c["type"] for c in config["criteria"]]
        assert kinds == ["stop::Iteration", "stop::ResidualNorm"]

    def test_build_config_no_residual(self):
        config = pg.build_config(solver="cg", reduction_factor=None)
        assert len(config["criteria"]) == 1

    def test_config_to_json(self):
        text = pg.config_to_json(pg.build_config(solver="gmres"))
        assert '"solver::Gmres"' in text or '"gmres"' in text

    def test_invalid_solver_via_config(self, ref, spd_small):
        mtx = pg.matrix(device=ref, data=spd_small)
        b = pg.as_tensor(device=ref, dim=(spd_small.shape[0], 1), fill=1.0)
        with pytest.raises(ConfigError):
            pg.solve(ref, mtx, b, solver="qmr")

    def test_invalid_preconditioner_object(self):
        with pytest.raises(GinkgoError):
            pg.build_config(solver="cg", preconditioner=3.14)


class TestExtensionSolvers:
    def test_idr_via_namespace(self, ref, general_small, rng):
        mtx = pg.matrix(device=ref, data=general_small)
        xstar = rng.standard_normal((general_small.shape[0], 1))
        b = pg.as_tensor(general_small @ xstar, device=ref)
        x = pg.as_tensor(device=ref, dim=xstar.shape, fill=0.0)
        solver = pg.solver.idr(ref, mtx, subspace_dim=4, max_iters=500,
                               reduction_factor=1e-9)
        logger, result = solver.apply(b, x)
        assert logger.converged
        np.testing.assert_allclose(result.numpy(), xstar, atol=1e-5)

    def test_cb_gmres_via_namespace(self, ref, spd_small, rng):
        mtx = pg.matrix(device=ref, data=spd_small)
        xstar = rng.standard_normal((spd_small.shape[0], 1))
        b = pg.as_tensor(spd_small @ xstar, device=ref)
        x = pg.as_tensor(device=ref, dim=xstar.shape, fill=0.0)
        solver = pg.solver.cb_gmres(ref, mtx, storage_precision="float32",
                                    max_iters=500, reduction_factor=1e-8)
        logger, result = solver.apply(b, x)
        assert logger.converged
        np.testing.assert_allclose(result.numpy(), xstar, atol=1e-4)

    def test_amg_preconditioner_namespace(self, ref):
        from repro.suitesparse import poisson_2d

        matrix = poisson_2d(24)
        mtx = pg.matrix(device=ref, data=matrix)
        precond = pg.preconditioner.Amg(ref, mtx, coarse_size=32)
        solver = pg.solver.cg(ref, mtx, precond, max_iters=300,
                              reduction_factor=1e-9)
        b = pg.as_tensor(device=ref, dim=(matrix.shape[0], 1), fill=1.0)
        x = pg.as_tensor(device=ref, dim=(matrix.shape[0], 1), fill=0.0)
        logger, _ = solver.apply(b, x)
        assert logger.converged

    def test_idr_via_config_solver(self, ref, general_small):
        mtx = pg.matrix(device=ref, data=general_small)
        b = pg.as_tensor(device=ref, dim=(general_small.shape[0], 1),
                         fill=1.0)
        logger, _ = pg.solve(ref, mtx, b, solver="idr", subspace_dim=2,
                             max_iters=500, reduction_factor=1e-8)
        assert logger.converged

    def test_amg_via_config_dict(self, ref):
        from repro.suitesparse import poisson_2d

        matrix = poisson_2d(20)
        mtx = pg.matrix(device=ref, data=matrix)
        b = pg.as_tensor(device=ref, dim=(matrix.shape[0], 1), fill=1.0)
        logger, _ = pg.solve(
            ref, mtx, b, solver="cg",
            preconditioner={"type": "amg", "coarse_size": 25},
            max_iters=300, reduction_factor=1e-8,
        )
        assert logger.converged
