"""Cache hit/miss counters through pg.profile and the resilient path."""

import numpy as np
import pytest

import repro as pg
from repro.core.resilient import FallbackChain, RetryPolicy, resilient_solve
from repro.ginkgo import (
    CudaExecutor,
    FaultInjector,
    FaultyExecutor,
    cachestats,
)
from repro.ginkgo.matrix import Csr
from repro.suitesparse.generators import spd_random

N = 200


def _system(seed=3):
    A = spd_random(N, 0.03, seed=seed)
    b = np.random.default_rng(7).standard_normal((N, 1))
    return A, b


class TestProfileMetrics:
    def test_profile_receives_cache_counters(self):
        A, b_np = _system()
        dev = CudaExecutor.create(noisy=False)
        mtx = Csr.from_scipy(dev, A)
        b = pg.as_tensor(device=dev, data=b_np)
        metrics = pg.MetricsRegistry()
        with pg.profile(metrics=metrics):
            handle = pg.solver.cg(dev, mtx, max_iters=400)
            handle.apply(b, pg.as_tensor(device=dev, dim=(N, 1)))
            handle.apply(b, pg.as_tensor(device=dev, dim=(N, 1)))
        assert metrics.counter("cache_workspace_miss").value > 0
        assert metrics.counter("cache_workspace_hit").value > 0
        assert metrics.counter("cache_dispatch_miss").value > 0
        # The registry mirrors the module-global tallies for the region.
        hits, _ = cachestats.counts("workspace")
        assert metrics.counter("cache_workspace_hit").value <= hits

    def test_sink_detaches_after_region(self):
        metrics = pg.MetricsRegistry()
        with pg.profile(metrics=metrics):
            pass
        before = metrics.counter("cache_workspace_miss").value
        dev = CudaExecutor.create(noisy=False)
        ws_probe = pg.as_tensor(device=dev, dim=(4, 1))  # outside the region
        assert ws_probe is not None
        assert metrics.counter("cache_workspace_miss").value == before

    def test_snapshot_reports_all_kinds(self):
        cachestats.reset()
        cachestats.record("workspace", True)
        cachestats.record("format", False)
        snap = cachestats.snapshot()
        assert snap["cache_workspace_hit"] == 1
        assert snap["cache_format_miss"] == 1
        assert cachestats.counts("format") == (0, 1)


class TestNestedProfileMirroring:
    """Regression: registering the same registry from nested profile
    regions must not double-count events, and the inner region's exit
    must not detach the outer region's still-active sink."""

    def test_same_registry_nested_counts_once(self):
        metrics = pg.MetricsRegistry()
        with pg.profile(metrics=metrics):
            with pg.profile(metrics=metrics):
                cachestats.record("workspace", True)
            cachestats.record("workspace", True)  # outer still mirrors
        assert metrics.counter("cache_workspace_hit").value == 2

    def test_inner_exit_keeps_outer_sink_alive(self):
        metrics = pg.MetricsRegistry()
        with pg.profile(metrics=metrics):
            with pg.profile(metrics=metrics):
                pass
            assert cachestats.sink_count() == 1
            cachestats.record("format", False)
        assert cachestats.sink_count() == 0
        assert metrics.counter("cache_format_miss").value == 1
        cachestats.record("format", False)  # fully detached now
        assert metrics.counter("cache_format_miss").value == 1

    def test_distinct_registries_each_mirror(self):
        outer = pg.MetricsRegistry()
        inner = pg.MetricsRegistry()
        with pg.profile(metrics=outer):
            with pg.profile(metrics=inner):
                cachestats.record("dispatch", True)
        assert outer.counter("cache_dispatch_hit").value == 1
        assert inner.counter("cache_dispatch_hit").value == 1

    def test_unregister_is_refcounted_not_destructive(self):
        metrics = pg.MetricsRegistry()
        cachestats.register_sink(metrics)
        cachestats.register_sink(metrics)
        cachestats.unregister_sink(metrics)
        cachestats.record("workspace", False)
        assert metrics.counter("cache_workspace_miss").value == 1
        cachestats.unregister_sink(metrics)
        cachestats.record("workspace", False)
        assert metrics.counter("cache_workspace_miss").value == 1
        # extra unregisters are harmless no-ops
        cachestats.unregister_sink(metrics)
        assert cachestats.sink_count() == 0

    def test_profile_setup_failure_does_not_leak_sink(self):
        metrics = pg.MetricsRegistry()
        with pytest.raises(Exception):
            with pg.profile("no-such-device", metrics=metrics):
                pass  # pragma: no cover - profile() raises on entry
        assert cachestats.sink_count() == 0


class TestResilientInteraction:
    def test_retries_reuse_pool_and_match_fault_free(self):
        """Workspace pooling must survive retry loops unchanged."""
        A, b_np = _system()
        clean = CudaExecutor.create(noisy=False)
        mtx_c = Csr.from_scipy(clean, A)
        b_c = pg.as_tensor(device=clean, data=b_np)
        report0, x0 = resilient_solve(
            clean, mtx_c, b_c,
            solver="gmres", max_iters=600, reduction_factor=1e-9,
            fallback=FallbackChain(clean),
        )
        assert report0.converged

        injector = FaultInjector(seed=11, kernel_rate=0.002, copy_rate=0.002)
        faulty = FaultyExecutor.create(
            CudaExecutor.create(noisy=False), injector
        )
        with injector.paused():
            mtx_f = Csr.from_scipy(faulty, A)
            b_f = pg.as_tensor(device=faulty, data=b_np)
        report, x = resilient_solve(
            faulty, mtx_f, b_f,
            solver="gmres", max_iters=600, reduction_factor=1e-9,
            retry=RetryPolicy(max_retries=8),
            fallback=FallbackChain(faulty),
        )
        assert report.converged
        np.testing.assert_allclose(
            x.numpy(), x0.numpy(), rtol=1e-6, atol=1e-8
        )
