"""pg.device and type-registry tests."""

import numpy as np
import pytest

import repro as pg
from repro.core.device import clear_device_cache
from repro.core.types import (
    TABLE1,
    index_dtype,
    index_suffix,
    value_dtype,
    value_suffix,
)
from repro.ginkgo.exceptions import GinkgoError
from repro.ginkgo.executor import (
    CudaExecutor,
    HipExecutor,
    OmpExecutor,
    ReferenceExecutor,
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_device_cache()
    yield
    clear_device_cache()


class TestDeviceFactory:
    def test_device_kinds(self):
        assert isinstance(pg.device("cuda"), CudaExecutor)
        assert isinstance(pg.device("hip"), HipExecutor)
        assert isinstance(pg.device("omp"), OmpExecutor)
        assert isinstance(pg.device("reference"), ReferenceExecutor)

    def test_aliases(self):
        assert isinstance(pg.device("cpu"), OmpExecutor)
        assert isinstance(pg.device("openmp"), OmpExecutor)
        assert isinstance(pg.device("ref"), ReferenceExecutor)

    def test_case_insensitive(self):
        assert isinstance(pg.device("CUDA"), CudaExecutor)

    def test_unknown_device(self):
        with pytest.raises(GinkgoError, match="unknown device"):
            pg.device("tpu")

    def test_cached_instance_shared(self):
        assert pg.device("cuda") is pg.device("cuda")

    def test_different_ids_are_different(self):
        assert pg.device("cuda", id=0) is not pg.device("cuda", id=1)

    def test_fresh_bypasses_cache(self):
        assert pg.device("cuda", fresh=True) is not pg.device("cuda")

    def test_num_threads_distinguishes(self):
        a = pg.device("omp", num_threads=2)
        b = pg.device("omp", num_threads=4)
        assert a is not b
        assert a.num_threads == 2


class TestTypes:
    def test_value_names(self):
        assert value_dtype("double") == np.float64
        assert value_dtype("float") == np.float32
        assert value_dtype("single") == np.float32
        assert value_dtype("half") == np.float16
        assert value_dtype("float64") == np.float64

    def test_value_dtype_passthrough(self):
        assert value_dtype(np.float32) == np.float32

    def test_unknown_value_type(self):
        with pytest.raises(GinkgoError):
            value_dtype("quad")
        with pytest.raises(GinkgoError):
            value_dtype(np.complex128)

    def test_index_names(self):
        assert index_dtype("int32") == np.int32
        assert index_dtype("int64") == np.int64
        assert index_dtype("long") == np.int64

    def test_unknown_index_type(self):
        with pytest.raises(GinkgoError):
            index_dtype("int8")

    def test_suffixes(self):
        assert value_suffix("double") == "double"
        assert value_suffix(np.float16) == "half"
        assert index_suffix(np.int64) == "int64"

    def test_table1_matches_paper(self):
        # Table 1: (2, half, -), (4, float, int32), (8, double, int64).
        assert TABLE1 == (
            (2, "half", None),
            (4, "float", "int32"),
            (8, "double", "int64"),
        )
