"""Rayleigh-Ritz and Krylov eigensolver tests (the pure-Python layer)."""

import numpy as np
import pytest
import scipy.sparse as sp

import repro as pg
from repro.core.rayleigh_ritz import orthonormalize
from repro.ginkgo.exceptions import GinkgoError
from repro.ginkgo.matrix import Csr, Dense


@pytest.fixture
def spd_operator(ref):
    """SPD operator with well-separated eigenvalues."""
    n = 40
    diag = np.linspace(1.0, 40.0, n)
    rng = np.random.default_rng(7)
    q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    dense = q @ np.diag(diag) @ q.T
    return Csr.from_scipy(ref, sp.csr_matrix(dense)), diag


class TestOrthonormalize:
    def test_columns_become_orthonormal(self, ref, rng):
        block = Dense(ref, rng.standard_normal((20, 5)))
        q = orthonormalize(block)
        gram = np.asarray(q).T @ np.asarray(q)
        np.testing.assert_allclose(gram, np.eye(5), atol=1e-10)

    def test_span_preserved(self, ref, rng):
        data = rng.standard_normal((10, 3))
        q = np.asarray(orthonormalize(Dense(ref, data)))
        # Projecting the original columns onto span(q) recovers them.
        projected = q @ (q.T @ data)
        np.testing.assert_allclose(projected, data, atol=1e-10)

    def test_dependent_columns_rejected(self, ref):
        data = np.ones((5, 2))
        with pytest.raises(GinkgoError, match="dependent"):
            orthonormalize(Dense(ref, data))


class TestRayleighRitz:
    def test_full_basis_recovers_spectrum(self, ref, spd_operator, rng):
        op, diag = spd_operator
        n = op.size.rows
        basis = Dense(ref, rng.standard_normal((n, n)))
        pairs = pg.rayleigh_ritz(op, basis)
        np.testing.assert_allclose(np.sort(pairs.values), np.sort(diag),
                                   atol=1e-8)

    def test_values_ascending(self, ref, spd_operator, rng):
        op, _ = spd_operator
        basis = Dense(ref, rng.standard_normal((op.size.rows, 8)))
        pairs = pg.rayleigh_ritz(op, basis)
        assert np.all(np.diff(pairs.values) >= 0)

    def test_residuals_reported(self, ref, spd_operator, rng):
        op, _ = spd_operator
        basis = Dense(ref, rng.standard_normal((op.size.rows, 5)))
        pairs = pg.rayleigh_ritz(op, basis)
        assert pairs.residual_norms.shape == (5,)
        assert np.all(pairs.residual_norms >= 0)

    def test_eigenvector_basis_gives_zero_residual(self, ref, spd_operator):
        op, diag = spd_operator
        dense = op.to_dense()
        _, vecs = np.linalg.eigh(np.asarray(dense))
        basis = Dense(ref, vecs[:, :4].copy())
        pairs = pg.rayleigh_ritz(op, basis, orthonormal=True)
        assert np.max(pairs.residual_norms) < 1e-8

    def test_dimension_validation(self, ref, spd_operator, rng):
        op, _ = spd_operator
        with pytest.raises(GinkgoError):
            pg.rayleigh_ritz(op, Dense(ref, rng.standard_normal((7, 2))))


class TestRayleighRitzEigensolver:
    def test_finds_dominant_eigenvalues(self, ref, spd_operator):
        op, diag = spd_operator
        pairs = pg.rayleigh_ritz_eigensolver(op, 3, num_iterations=40,
                                             seed=3)
        expected = np.sort(diag)[-3:]
        np.testing.assert_allclose(pairs.values, expected, rtol=1e-4)

    def test_residuals_shrink_with_iterations(self, ref, spd_operator):
        op, _ = spd_operator
        rough = pg.rayleigh_ritz_eigensolver(op, 2, num_iterations=2, seed=3)
        tight = pg.rayleigh_ritz_eigensolver(op, 2, num_iterations=40, seed=3)
        assert np.max(tight.residual_norms) < np.max(rough.residual_norms)

    def test_tolerance_early_exit(self, ref, spd_operator):
        op, _ = spd_operator
        pairs = pg.rayleigh_ritz_eigensolver(
            op, 2, num_iterations=200, tol=1e-6, seed=3
        )
        assert np.max(pairs.residual_norms) < 1e-4

    def test_invalid_arguments(self, ref, spd_operator):
        op, _ = spd_operator
        with pytest.raises(GinkgoError):
            pg.rayleigh_ritz_eigensolver(op, 0)
        with pytest.raises(GinkgoError):
            pg.rayleigh_ritz_eigensolver(op, 2, num_iterations=0)


class TestLanczos:
    def test_extreme_eigenvalues(self, ref, spd_operator):
        op, diag = spd_operator
        result = pg.lanczos(op, 30, seed=5)
        ritz = result.eigenvalues()
        assert ritz.max() == pytest.approx(diag.max(), rel=1e-3)
        assert ritz.min() == pytest.approx(diag.min(), rel=0.1)

    def test_basis_orthonormal(self, ref, spd_operator):
        op, _ = spd_operator
        result = pg.lanczos(op, 15, seed=5)
        q = np.asarray(result.basis)
        np.testing.assert_allclose(q.T @ q, np.eye(q.shape[1]), atol=1e-8)

    def test_invalid_steps(self, ref, spd_operator):
        op, _ = spd_operator
        with pytest.raises(GinkgoError):
            pg.lanczos(op, 0)


class TestArnoldi:
    def test_hessenberg_relation(self, ref, general_small):
        op = Csr.from_scipy(ref, general_small)
        result = pg.arnoldi(op, 10, seed=5)
        v = np.asarray(result.basis)
        h = result.hessenberg
        # A V_m = V_{m+1} H (restricted to the built basis).
        a = general_small.toarray()
        m = h.shape[1]
        np.testing.assert_allclose(a @ v[:, :m], v @ h, atol=1e-8)

    def test_eigenvalue_estimates(self, ref, spd_operator):
        op, diag = spd_operator
        result = pg.arnoldi(op, 35, seed=5)
        assert np.max(result.eigenvalues().real) == pytest.approx(
            diag.max(), rel=1e-2
        )


class TestPowerIteration:
    def test_dominant_eigenpair(self, ref, spd_operator):
        op, diag = spd_operator
        value, vector = pg.power_iteration(op, num_iterations=300, seed=2)
        assert value == pytest.approx(diag.max(), rel=1e-4)
        # Residual check: A v ~ lambda v.
        av = Dense.zeros(ref, vector.size, vector.dtype)
        op.apply(vector, av)
        np.testing.assert_allclose(
            np.asarray(av), value * np.asarray(vector), atol=1e-3
        )

    def test_tolerance_stops_early(self, ref, spd_operator):
        op, diag = spd_operator
        value, _ = pg.power_iteration(op, num_iterations=5000, seed=2,
                                      tol=1e-12)
        assert value == pytest.approx(diag.max(), rel=1e-6)
