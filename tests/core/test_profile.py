"""The public ``pg.profile()`` context manager."""

import numpy as np
import pytest

import repro as pg
from repro.core.resilient import FallbackChain, RetryPolicy, resilient_solve
from repro.ginkgo import (
    CudaExecutor,
    FaultInjector,
    FaultyExecutor,
    ReferenceExecutor,
)
from repro.ginkgo.matrix import Csr
from repro.perfmodel import KernelCost, SimClock
from repro.suitesparse.generators import spd_random


@pytest.fixture
def system():
    A = spd_random(120, 0.04, seed=5)
    b = np.ones((120, 1))
    return A, b


def solve_on(exec_, system, **kwargs):
    A, b_np = system
    mtx = Csr.from_scipy(exec_, A)
    b = pg.as_tensor(device=exec_, data=b_np)
    return pg.solve(
        exec_, mtx, b, solver="cg", max_iters=300, reduction_factor=1e-8,
        **kwargs,
    )


class TestTargetedMode:
    def test_profiles_only_the_target(self, ref, cuda):
        with pg.profile(ref) as prof:
            ref.run(KernelCost("on_ref", 1.0, 8.0))
            cuda.run(KernelCost("on_cuda", 1.0, 8.0))
        assert prof.trace.find("on_ref")
        assert not prof.trace.find("on_cuda")

    def test_detaches_on_exit(self, ref):
        with pg.profile(ref) as prof:
            pass
        assert not ref.clock.is_traced_by(prof)
        ref.run(KernelCost("later", 1.0, 8.0))
        assert not prof.trace.find("later")

    def test_accepts_device_names(self, system):
        with pg.profile("reference") as prof:
            solve_on(pg.device("reference"), system)
        assert prof.trace.find("CgSolver::apply")

    def test_full_solve_attribution(self, cuda, system):
        with pg.profile(cuda) as prof:
            logger, _ = solve_on(cuda, system)
        assert logger.converged
        table = prof.attribution()
        assert table.coverage >= 0.99
        # The staging (Csr.from_scipy, tensor upload) plus the solve all
        # happened inside the region; kernel time dominates.
        assert table.kernel_time > table.stall_time

    def test_duplicate_targets_attach_once(self, ref):
        with pg.profile(ref, ref, ref.clock) as prof:
            ref.run(KernelCost("once", 1.0, 8.0))
        assert len(prof.trace.find("once")) == 1


class TestGlobalMode:
    def test_observes_executors_created_inside(self, system):
        with pg.profile() as prof:
            exec_ = ReferenceExecutor.create(noisy=False)
            solve_on(exec_, system)
        assert prof.trace.find("CgSolver::apply")
        assert not SimClock._global_tracers

    def test_unregisters_on_exception(self):
        with pytest.raises(RuntimeError):
            with pg.profile():
                raise RuntimeError("boom")
        assert not SimClock._global_tracers


class TestComposesWithResilientSolve:
    def test_fault_events_recorded_inside_owning_span(self, system):
        A, b_np = system
        injector = FaultInjector(schedule={"run": [30]})
        exec_ = FaultyExecutor.create(
            CudaExecutor.create(noisy=False), injector
        )
        with injector.paused():
            mtx = Csr.from_scipy(exec_, A)
            b = pg.as_tensor(device=exec_, data=b_np)
        with pg.profile() as prof:
            report, _ = resilient_solve(
                exec_, mtx, b,
                solver="cg", max_iters=300, reduction_factor=1e-8,
                retry=RetryPolicy(max_retries=2, base_delay=1e-4),
                fallback=FallbackChain(exec_),
            )
        assert report.converged
        assert report.faults_injected == 1
        faults = prof.trace.find("fault_injected")
        assert len(faults) == 1
        # The fault fired mid-kernel, inside the solver's apply span.
        applies = prof.trace.find("CgSolver::apply")
        assert any(fault in list(root.walk()) for root in applies
                   for fault in faults)
        # The retry backoff is a labelled stall leaf, not anonymous time.
        backoffs = prof.trace.find("retry_backoff")
        assert len(backoffs) == 1
        assert backoffs[0].category == "stall"
        assert prof.trace.find("retry")
        assert prof.trace.find("attempt_started")

    def test_metrics_shared_between_profile_and_resilient(self, system):
        A, b_np = system
        metrics = pg.MetricsRegistry()
        exec_ = CudaExecutor.create(noisy=False)
        mtx = Csr.from_scipy(exec_, A)
        b = pg.as_tensor(device=exec_, data=b_np)
        with pg.profile(metrics=metrics):
            report, _ = resilient_solve(
                exec_, mtx, b,
                solver="cg", max_iters=300, reduction_factor=1e-8,
                fallback=FallbackChain(exec_),
                metrics=metrics,
            )
        assert metrics.counter("solves").value == 1
        assert metrics.counter("solves_converged").value == 1
        assert metrics.counter("attempts").value == 1
        assert metrics.counter("kernel_launches").value > 0
        hist = metrics.histogram("iterations_per_solve")
        assert hist.count == 1
        assert hist.mean == report.num_iterations

    def test_shared_registry_counts_fault_events_once(self, system):
        # Regression: with one registry wired into both pg.profile() and
        # resilient_solve(), fault/retry events used to be counted twice
        # (once from the clock mark, once from the report).
        A, b_np = system
        injector = FaultInjector(schedule={"run": [30]})
        exec_ = FaultyExecutor.create(
            CudaExecutor.create(noisy=False), injector
        )
        with injector.paused():
            mtx = Csr.from_scipy(exec_, A)
            b = pg.as_tensor(device=exec_, data=b_np)
        metrics = pg.MetricsRegistry()
        with pg.profile(metrics=metrics):
            report, _ = resilient_solve(
                exec_, mtx, b,
                solver="cg", max_iters=300, reduction_factor=1e-8,
                retry=RetryPolicy(max_retries=2, base_delay=1e-4),
                fallback=FallbackChain(exec_),
                metrics=metrics,
            )
        assert metrics.counter("faults_injected").value == report.faults_injected == 1
        assert metrics.counter("retries").value == report.retries == 1
        assert metrics.counter("attempts").value == report.attempts

    def test_pg_solve_threads_metrics(self, system):
        metrics = pg.MetricsRegistry()
        exec_ = CudaExecutor.create(noisy=False)
        report, _ = solve_on(
            exec_, system,
            retry=RetryPolicy(max_retries=1),
            fallback=FallbackChain(exec_),
            metrics=metrics,
        )
        assert report.converged
        assert metrics.counter("solves").value == 1
