"""Resilient solve path: retry, backoff, fallback, checkpoint/restart."""

import numpy as np
import pytest

import repro as pg
from repro.core.solver_api import _unwrap
from repro.core.resilient import (
    FallbackChain,
    ResilienceReport,
    RetryPolicy,
    resilient_solve,
)
from repro.ginkgo import (
    CudaExecutor,
    FaultInjector,
    FaultyExecutor,
    GinkgoError,
    OmpExecutor,
    ResilienceExhausted,
    SolverBreakdown,
)
from repro.ginkgo.exceptions import CudaError
from repro.ginkgo.matrix import Csr
from repro.suitesparse.generators import spd_random

N = 300
SOLVE_KWARGS = dict(
    solver="gmres",
    preconditioner="jacobi",
    max_iters=500,
    reduction_factor=1e-9,
    krylov_dim=50,
)


@pytest.fixture(scope="module")
def system():
    A = spd_random(N, 0.02, seed=3)
    rng = np.random.default_rng(7)
    b = rng.standard_normal((N, 1))
    return A, b


def faulty_cuda(**injector_kwargs):
    injector = FaultInjector(**injector_kwargs)
    exec_ = FaultyExecutor.create(CudaExecutor.create(noisy=False), injector)
    return exec_, injector


def stage(exec_, system, injector=None):
    """Build the operands on an executor without tripping setup faults."""
    A, b_np = system
    if injector is not None:
        with injector.paused():
            mtx = Csr.from_scipy(exec_, A)
            b = pg.as_tensor(device=exec_, data=b_np)
    else:
        mtx = Csr.from_scipy(exec_, A)
        b = pg.as_tensor(device=exec_, data=b_np)
    return mtx, b


def reference_residual(system):
    """Fault-free solve on a plain cuda executor."""
    exec_ = CudaExecutor.create(noisy=False)
    mtx, b = stage(exec_, system)
    logger, _ = pg.solve(exec_, mtx, b, **SOLVE_KWARGS)
    assert logger.converged
    return logger.final_residual_norm


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(GinkgoError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(GinkgoError, match="base_delay"):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(GinkgoError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)

    def test_exponential_delay(self):
        policy = RetryPolicy(base_delay=1e-3, backoff_factor=2.0)
        assert policy.delay(0) == pytest.approx(1e-3)
        assert policy.delay(1) == pytest.approx(2e-3)
        assert policy.delay(3) == pytest.approx(8e-3)


class TestFallbackChain:
    def test_default_skips_primary(self):
        chain = FallbackChain().resolve(CudaExecutor.create(noisy=False))
        assert [e.name for e in chain] == ["omp", "reference"]

    def test_accepts_sequence_or_varargs(self):
        assert FallbackChain("omp", "reference").devices == (
            "omp",
            "reference",
        )
        assert FallbackChain(["omp"]).devices == ("omp",)

    def test_accepts_executor_instances(self):
        omp = OmpExecutor.create(noisy=False)
        chain = FallbackChain(omp).resolve(CudaExecutor.create(noisy=False))
        assert chain == [omp]

    def test_pinning_to_primary_yields_empty_chain(self):
        cuda = CudaExecutor.create(noisy=False)
        assert FallbackChain(cuda).resolve(cuda) == []


class TestRetryRecovery:
    """The acceptance scenario: transient kernel faults healed by retry."""

    def test_retry_matches_fault_free_residual(self, system):
        expected = reference_residual(system)
        exec_, inj = faulty_cuda(schedule={"run": [2, 5]})
        mtx, b = stage(exec_, system, inj)
        report, x = resilient_solve(exec_, mtx, b, **SOLVE_KWARGS)
        assert report.converged
        assert report.executor_name == "cuda"
        assert report.attempts == 3  # two faulted attempts, then success
        assert report.retries == 2
        assert report.fallbacks == 0
        assert report.faults_injected == 2
        np.testing.assert_allclose(
            report.final_residual_norm, expected, rtol=1e-10
        )
        # The solution actually solves the system.
        A, b_np = system
        residual = b_np - A @ x.numpy()
        assert np.linalg.norm(residual) <= 1e-8 * np.linalg.norm(b_np)

    def test_every_fault_and_recovery_logged(self, system):
        exec_, inj = faulty_cuda(schedule={"run": [2, 5]})
        mtx, b = stage(exec_, system, inj)
        report, _ = resilient_solve(exec_, mtx, b, **SOLVE_KWARGS)
        names = [name for name, _ in report.events]
        assert names.count("fault_injected") == inj.fault_count == 2
        assert names.count("attempt_failed") == 2
        assert names.count("retry") == 2
        assert names[-1] == "solve_completed"
        # Faults interleave with the recovery actions in causal order.
        first_fault = names.index("fault_injected")
        assert names[first_fault + 1 :].index("retry") >= 0
        retries = [p for name, p in report.events if name == "retry"]
        assert retries[0]["delay"] == pytest.approx(1e-3)
        assert retries[1]["delay"] == pytest.approx(2e-3)

    def test_same_seed_identical_event_trails(self, system):
        def run():
            exec_, inj = faulty_cuda(seed=11, kernel_rate=0.02)
            mtx, b = stage(exec_, system, inj)
            report, _ = resilient_solve(exec_, mtx, b, **SOLVE_KWARGS)
            return report.events

        first, second = run(), run()
        assert first == second
        assert any(name == "fault_injected" for name, _ in first)

    def test_backoff_advances_simulated_clock(self, system):
        exec_, inj = faulty_cuda(schedule={"run": [0]})
        mtx, b = stage(exec_, system, inj)
        retry = RetryPolicy(base_delay=5.0)
        before = exec_.clock.now
        report, _ = resilient_solve(
            exec_, mtx, b, retry=retry, **SOLVE_KWARGS
        )
        assert report.converged
        assert exec_.clock.now - before >= 5.0


class TestFallbackRecovery:
    def test_falls_back_when_retries_exhausted(self, system):
        expected = reference_residual(system)
        exec_, inj = faulty_cuda(seed=5, kernel_rate=0.9)
        mtx, b = stage(exec_, system, inj)
        report, x = resilient_solve(exec_, mtx, b, **SOLVE_KWARGS)
        assert report.converged
        assert report.executor_name == "omp"
        assert report.fallbacks == 1
        assert ("fallback", {"from": "cuda", "to": "omp"}) in report.events
        np.testing.assert_allclose(
            report.final_residual_norm, expected, rtol=1e-10
        )

    def test_corruption_triggers_breakdown_then_recovers(self, system):
        # Call 0 of the copy site is b.clone() at the start of apply: the
        # poisoned NaN propagates into the residual, breaks the solve
        # down, and the retry (clean copy) recovers.
        exec_, inj = faulty_cuda(schedule={"copy": [(0, "corruption")]})
        mtx, b = stage(exec_, system, inj)
        report, _ = resilient_solve(exec_, mtx, b, **SOLVE_KWARGS)
        assert report.converged
        assert report.count("data_corrupted") == 1
        failed = [p for name, p in report.events if name == "attempt_failed"]
        assert failed[0]["error"] == "SolverBreakdown"

    def test_exhausted_raises_with_history(self, system):
        exec_, inj = faulty_cuda(kernel_rate=1.0)
        mtx, b = stage(exec_, system, inj)
        retry = RetryPolicy(max_retries=1)
        with pytest.raises(ResilienceExhausted) as excinfo:
            resilient_solve(
                exec_,
                mtx,
                b,
                retry=retry,
                fallback=FallbackChain(exec_),  # pin: no degradation
                **SOLVE_KWARGS,
            )
        err = excinfo.value
        assert err.attempts == 2
        assert all(name == "cuda" for name, _ in err.history)
        assert all(isinstance(e, CudaError) for _, e in err.history)


class TestCheckpointRestart:
    def test_restart_resumes_from_checkpoint(self, system):
        # Fault at kernel call 400 — far enough in that a checkpoint has
        # been captured by then.
        exec_, inj = faulty_cuda(schedule={"run": [100]})
        mtx, b = stage(exec_, system, inj)
        report, x = resilient_solve(
            exec_, mtx, b, checkpoint_every=5, **SOLVE_KWARGS
        )
        assert report.converged
        assert report.count("checkpoint_saved") > 0
        restored = [
            p for name, p in report.events if name == "checkpoint_restored"
        ]
        assert len(restored) == 1
        assert restored[0]["iteration"] > 0
        retry_events = [p for name, p in report.events if name == "retry"]
        assert retry_events[0]["restart_iteration"] == restored[0]["iteration"]
        # Restarting from a partial solution still reaches the tolerance.
        A, b_np = system
        residual = b_np - A @ x.numpy()
        assert np.linalg.norm(residual) <= 1e-8 * np.linalg.norm(b_np)

    def test_no_checkpoint_restarts_from_scratch(self, system):
        exec_, inj = faulty_cuda(schedule={"run": [2]})
        mtx, b = stage(exec_, system, inj)
        report, _ = resilient_solve(exec_, mtx, b, **SOLVE_KWARGS)
        retry_events = [p for name, p in report.events if name == "retry"]
        assert retry_events[0]["restart_iteration"] == 0
        assert report.count("checkpoint_restored") == 0


class TestSolveIntegration:
    """The resilience knobs on the plain pg.solve surface."""

    def test_solve_routes_to_resilient(self, system):
        exec_, inj = faulty_cuda(schedule={"run": [2]})
        mtx, b = stage(exec_, system, inj)
        report, x = pg.solve(
            exec_, mtx, b, retry=RetryPolicy(max_retries=2), **SOLVE_KWARGS
        )
        assert isinstance(report, ResilienceReport)
        assert report.converged
        assert report.retries == 1

    def test_solve_without_knobs_unchanged(self, cuda, system):
        mtx, b = stage(cuda, system)
        logger, x = pg.solve(cuda, mtx, b, **SOLVE_KWARGS)
        assert logger.converged
        assert not isinstance(logger, ResilienceReport)

    def test_fault_free_resilient_solve_is_plain_solve(self, cuda, system):
        expected = reference_residual(system)
        mtx, b = stage(cuda, system)
        report, _ = resilient_solve(cuda, mtx, b, **SOLVE_KWARGS)
        assert report.converged
        assert report.attempts == 1
        assert report.events[0][0] == "attempt_started"
        assert report.events[-1][0] == "solve_completed"
        np.testing.assert_allclose(
            report.final_residual_norm, expected, rtol=1e-10
        )

    def test_works_with_device_names(self, system):
        A, b_np = system
        omp = pg.device("omp")
        mtx = Csr.from_scipy(omp, A)
        b = pg.as_tensor(device=omp, data=b_np)
        report, _ = resilient_solve("omp", mtx, b, **SOLVE_KWARGS)
        assert report.converged


class TestBreakdownDetection:
    @staticmethod
    def _poisoned_system(ref):
        import scipy.sparse as sp

        # A NaN in the right-hand side makes the very first residual
        # non-finite, modelling silent data corruption upstream.
        A = sp.eye(4, format="csr") * 2.0
        mtx = Csr.from_scipy(ref, A)
        b_np = np.ones((4, 1))
        b_np[1, 0] = np.nan
        b = _unwrap(pg.as_tensor(b_np, device=ref))
        x = _unwrap(pg.as_tensor(device=ref, dim=(4, 1), fill=0.0))
        return mtx, b, x

    @staticmethod
    def _factory(ref, strict):
        from repro.ginkgo.config import parse

        config = {
            "type": "cg",
            "criteria": [{"type": "stop::Iteration", "max_iters": 10}],
        }
        if strict:
            config["strict_breakdown"] = True
        return parse(ref, config)

    def test_strict_breakdown_raises(self, ref):
        mtx, b, x = self._poisoned_system(ref)
        solver = self._factory(ref, strict=True).generate(mtx)
        with pytest.raises(SolverBreakdown) as excinfo:
            solver.apply(b, x)
        assert not np.isfinite(excinfo.value.residual_norm)

    def test_lenient_breakdown_stops_and_flags(self, ref):
        from repro.ginkgo.log import ConvergenceLogger

        mtx, b, x = self._poisoned_system(ref)
        solver = self._factory(ref, strict=False).generate(mtx)
        logger = ConvergenceLogger()
        solver.add_logger(logger)
        solver.apply(b, x)
        assert solver.breakdown
        assert logger.breakdown
        assert not logger.converged
