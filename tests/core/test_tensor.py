"""Tensor and as_tensor/array tests."""

import numpy as np
import pytest

import repro as pg
from repro.core.tensor import Tensor
from repro.ginkgo.exceptions import ExecutorMismatch, GinkgoError
from repro.ginkgo.matrix import Dense


class TestAsTensor:
    def test_listing1_fill_form(self, ref):
        b = pg.as_tensor(device=ref, dim=(10, 1), dtype="double", fill=1.0)
        assert b.shape == (10, 1)
        assert b.dtype == np.float64
        np.testing.assert_array_equal(np.asarray(b), 1.0)

    def test_scalar_dim(self, ref):
        t = pg.as_tensor(device=ref, dim=7, dtype="float")
        assert t.shape == (7, 1)
        assert t.dtype == np.float32

    def test_from_numpy(self, ref):
        arr = np.arange(5.0)
        t = pg.as_tensor(arr, device=ref)
        np.testing.assert_array_equal(np.asarray(t).ravel(), arr)

    def test_from_numpy_zero_copy_on_host(self, ref):
        arr = np.arange(5.0)
        t = pg.as_tensor(arr, device=ref)
        assert pg.shares_memory(t, np.asarray(t))

    def test_from_list(self, ref):
        t = pg.as_tensor([[1.0], [2.0]], device=ref)
        assert t.shape == (2, 1)

    def test_dtype_conversion(self, ref):
        t = pg.as_tensor(np.arange(3.0), device=ref, dtype="half")
        assert t.dtype == np.float16

    def test_from_tensor_moves_device(self, ref, cuda):
        t = pg.as_tensor(np.arange(3.0), device=ref)
        moved = pg.as_tensor(t, device=cuda)
        assert moved.device is cuda
        np.testing.assert_array_equal(moved.numpy().ravel(), np.arange(3.0))

    def test_from_engine_dense(self, ref):
        d = Dense(ref, np.ones((3, 1)))
        t = pg.as_tensor(d, device=ref)
        assert isinstance(t, Tensor)

    def test_missing_data_and_dim(self, ref):
        with pytest.raises(GinkgoError, match="dim"):
            pg.as_tensor(device=ref)

    def test_array_alias(self, ref):
        t = pg.array([1.0, 2.0, 3.0], device=ref)
        assert t.shape == (3, 1)


class TestTensorOps:
    def test_add_sub(self, ref):
        a = pg.as_tensor(np.array([1.0, 2.0]), device=ref)
        b = pg.as_tensor(np.array([10.0, 20.0]), device=ref)
        np.testing.assert_array_equal(
            np.asarray(a + b).ravel(), [11.0, 22.0]
        )
        np.testing.assert_array_equal(
            np.asarray(b - a).ravel(), [9.0, 18.0]
        )

    def test_scalar_mul_div_neg(self, ref):
        a = pg.as_tensor(np.array([2.0, 4.0]), device=ref)
        np.testing.assert_array_equal(np.asarray(2 * a).ravel(), [4.0, 8.0])
        np.testing.assert_array_equal(np.asarray(a / 2).ravel(), [1.0, 2.0])
        np.testing.assert_array_equal(np.asarray(-a).ravel(), [-2.0, -4.0])

    def test_ops_do_not_mutate_operands(self, ref):
        a = pg.as_tensor(np.array([1.0]), device=ref)
        b = pg.as_tensor(np.array([2.0]), device=ref)
        _ = a + b
        assert np.asarray(a)[0, 0] == 1.0

    def test_inplace_ops(self, ref):
        a = pg.as_tensor(np.array([1.0, 2.0]), device=ref)
        b = pg.as_tensor(np.array([1.0, 1.0]), device=ref)
        a.add_(b, alpha=3.0).scale_(2.0)
        np.testing.assert_array_equal(np.asarray(a).ravel(), [8.0, 10.0])
        a.fill_(0.0)
        assert not np.asarray(a).any()

    def test_dot_and_norm(self, ref):
        a = pg.as_tensor(np.array([3.0, 4.0]), device=ref)
        assert a.norm() == pytest.approx(5.0)
        assert a.dot(a) == pytest.approx(25.0)

    def test_type_error_on_foreign_operand(self, ref):
        a = pg.as_tensor(np.array([1.0]), device=ref)
        with pytest.raises(TypeError):
            a + [1.0]

    def test_transpose(self, ref):
        a = pg.as_tensor(np.ones((2, 3)), device=ref)
        assert a.T.shape == (3, 2)

    def test_item(self, ref):
        t = pg.as_tensor(np.array([[42.0]]), device=ref)
        assert t.item() == 42.0
        with pytest.raises(GinkgoError):
            pg.as_tensor(np.ones(3), device=ref).item()

    def test_getitem(self, ref):
        t = pg.as_tensor(np.arange(4.0), device=ref)
        assert t[2, 0] == 2.0

    def test_len(self, ref):
        assert len(pg.as_tensor(np.ones(6), device=ref)) == 6

    def test_astype(self, ref):
        t = pg.as_tensor(np.ones(3), device=ref).astype("float")
        assert t.dtype == np.float32


class TestDeviceSemantics:
    def test_device_tensor_blocks_buffer_protocol(self, cuda):
        t = pg.as_tensor(np.ones(4), device=cuda)
        with pytest.raises(ExecutorMismatch):
            np.asarray(t)

    def test_numpy_copies_from_device(self, cuda):
        t = pg.as_tensor(np.arange(4.0), device=cuda)
        np.testing.assert_array_equal(t.numpy().ravel(), np.arange(4.0))

    def test_to_device_and_back(self, ref, cuda):
        t = pg.as_tensor(np.arange(4.0), device=ref)
        gpu = t.to(cuda)
        back = gpu.to(ref)
        np.testing.assert_array_equal(np.asarray(back), np.asarray(t))

    def test_to_same_device_returns_self(self, ref):
        t = pg.as_tensor(np.ones(2), device=ref)
        assert t.to(ref) is t

    def test_to_accepts_device_names(self, ref):
        t = pg.as_tensor(np.ones(2), device=ref)
        assert t.to("cuda").device.name == "cuda"

    def test_transfer_charges_clocks(self, ref, cuda):
        t = pg.as_tensor(np.ones(1 << 16), device=ref)
        before = cuda.clock.now
        t.to(cuda)
        assert cuda.clock.now > before

    def test_clone_independent(self, ref):
        t = pg.as_tensor(np.zeros(3), device=ref)
        c = t.clone().fill_(9.0)
        assert not np.asarray(t).any()
        assert np.asarray(c).min() == 9.0
