"""Tests for the storage-vs-arithmetic precision accessor layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ginkgo.accessor import (
    ADAPTIVE_FLOAT_COND_LIMIT,
    ADAPTIVE_HALF_COND_LIMIT,
    SUFFIX_DTYPES,
    VALUE_SUFFIX_ALIASES,
    ReducedPrecisionAccessor,
    arithmetic_dtype_for,
    canonical_value_suffix,
    resolve_storage_dtype,
    select_block_precision,
    value_dtype_for,
)
from repro.ginkgo.exceptions import GinkgoError
from repro.perfmodel import blas1_cost, spmv_cost, trsv_cost


class TestCanonicalValueSuffix:
    @pytest.mark.parametrize("spelling", sorted(VALUE_SUFFIX_ALIASES))
    def test_every_accepted_spelling(self, spelling):
        suffix = canonical_value_suffix(spelling)
        assert suffix in SUFFIX_DTYPES

    @pytest.mark.parametrize(
        "spelling, expected",
        [
            ("half", "half"),
            ("float16", "half"),
            ("float", "float"),
            ("float32", "float"),
            ("single", "float"),
            ("double", "double"),
            ("float64", "double"),
        ],
    )
    def test_alias_table(self, spelling, expected):
        assert canonical_value_suffix(spelling) == expected

    def test_spellings_are_case_insensitive(self):
        assert canonical_value_suffix("Float32") == "float"
        assert canonical_value_suffix("DOUBLE") == "double"

    @pytest.mark.parametrize(
        "dtype, expected",
        [
            (np.float16, "half"),
            (np.float32, "float"),
            (np.float64, "double"),
            (np.dtype(np.float32), "float"),
        ],
    )
    def test_numpy_dtypes(self, dtype, expected):
        assert canonical_value_suffix(dtype) == expected

    def test_unknown_spelling_lists_accepted(self):
        with pytest.raises(GinkgoError) as excinfo:
            canonical_value_suffix("quad")
        message = str(excinfo.value)
        for spelling in VALUE_SUFFIX_ALIASES:
            assert spelling in message


class TestDtypeResolution:
    @pytest.mark.parametrize(
        "spec, expected",
        [
            ("half", np.float16),
            ("float32", np.float32),
            ("double", np.float64),
            (np.float32, np.float32),
        ],
    )
    def test_value_dtype_for(self, spec, expected):
        assert value_dtype_for(spec) == np.dtype(expected)

    def test_storage_defaults_to_working(self):
        assert resolve_storage_dtype(None, np.float64) == np.float64
        assert resolve_storage_dtype(None, np.float32) == np.float32

    def test_storage_spelling_resolves(self):
        assert resolve_storage_dtype("float", np.float64) == np.float32
        assert resolve_storage_dtype("half", np.float64) == np.float16

    def test_half_arithmetic_upcasts_to_float(self):
        # SciPy cannot compute in half; mirror Ginkgo's half kernels.
        assert arithmetic_dtype_for(np.float16) == np.float32
        assert arithmetic_dtype_for(np.float32) == np.float32
        assert arithmetic_dtype_for(np.float64) == np.float64


class TestSelectBlockPrecision:
    def test_well_conditioned_gets_half(self):
        assert select_block_precision(1.0, np.float64) == np.float16
        assert (
            select_block_precision(ADAPTIVE_HALF_COND_LIMIT, np.float64)
            == np.float16
        )

    def test_moderate_condition_gets_float(self):
        assert select_block_precision(1.0e4, np.float64) == np.float32
        assert (
            select_block_precision(ADAPTIVE_FLOAT_COND_LIMIT, np.float64)
            == np.float32
        )

    def test_ill_conditioned_gets_double(self):
        assert select_block_precision(1.0e8, np.float64) == np.float64

    def test_capped_at_working_precision(self):
        # A float32 solve never stores *wider* than float32.
        assert select_block_precision(1.0e8, np.float32) == np.float32

    @pytest.mark.parametrize("cond", [float("nan"), float("inf"), 0.0, -1.0])
    def test_degenerate_estimates_stay_at_working(self, cond):
        assert select_block_precision(cond, np.float64) == np.float64


class TestReducedPrecisionAccessor:
    def test_uniform_read_is_passthrough(self):
        values = np.arange(4, dtype=np.float64)
        acc = ReducedPrecisionAccessor(values, np.float64)
        assert acc.is_uniform
        # Byte-identity of the uniform path rests on this: the very same
        # array object, no copy, no round-trip.
        assert acc.read() is acc.stored

    def test_reduced_read_converts_and_caches(self):
        values = np.array([1.0, 1.0 / 3.0], dtype=np.float64)
        acc = ReducedPrecisionAccessor(values, np.float32)
        assert not acc.is_uniform
        assert acc.stored.dtype == np.float32
        read = acc.read()
        assert read.dtype == np.float64
        assert read is acc.read()  # cached conversion
        # The value went through float32 storage: precision was dropped.
        assert read[1] == np.float64(np.float32(1.0 / 3.0))

    def test_half_values_read_at_float32_arithmetic(self):
        # Half values default to float32 arithmetic (the half-kernel
        # contract); an explicit arithmetic dtype overrides.
        values = np.arange(4, dtype=np.float16)
        acc = ReducedPrecisionAccessor(values, np.float16)
        assert acc.storage_dtype == np.float16
        assert acc.arithmetic_dtype == np.float32
        assert acc.read().dtype == np.float32
        explicit = ReducedPrecisionAccessor(
            np.arange(4, dtype=np.float64), np.float16,
            arithmetic_dtype=np.float64,
        )
        assert explicit.arithmetic_dtype == np.float64

    def test_storage_bytes_reflect_storage_width(self):
        values = np.arange(8, dtype=np.float64)
        assert ReducedPrecisionAccessor(values, np.float32).storage_bytes == 4
        assert ReducedPrecisionAccessor(values, np.float16).nbytes == 16


class TestKernelWidthValidation:
    """Unknown value widths raise a clear ValueError, not a KeyError."""

    def test_spmv_cost_rejects_unknown_width(self):
        with pytest.raises(ValueError) as excinfo:
            spmv_cost("csr", 4, 4, 8, 3, 4)
        message = str(excinfo.value)
        assert "3" in message
        assert "[2, 4, 8]" in message
        assert "float32" in message

    def test_blas1_cost_rejects_unknown_width(self):
        with pytest.raises(ValueError, match=r"supported widths"):
            blas1_cost("axpy", 16, 16, 2)

    def test_trsv_cost_rejects_unknown_width(self):
        with pytest.raises(ValueError, match=r"supported widths"):
            trsv_cost(4, 8, 5, 4)

    @pytest.mark.parametrize("width", [2, 4, 8])
    def test_supported_widths_still_work(self, width):
        cost = spmv_cost("csr", 4, 4, 8, width, 4)
        assert cost.bytes > 0
