"""gko::array-equivalent tests."""

import numpy as np
import pytest

from repro.ginkgo import Array, ExecutorMismatch
from repro.ginkgo.exceptions import GinkgoError


class TestArray:
    def test_construction_copies(self, ref):
        src = np.arange(5, dtype=np.float64)
        arr = Array(ref, src)
        src[0] = 99
        assert arr.view()[0] == 0

    def test_requires_executor(self):
        with pytest.raises(GinkgoError, match="Executor"):
            Array("not an executor", [1, 2, 3])

    def test_flattens_to_1d(self, ref):
        arr = Array(ref, np.zeros((2, 3)))
        assert arr.size == 6

    def test_empty_and_full(self, ref):
        arr = Array.empty(ref, 7, np.int32)
        assert arr.size == 7
        assert arr.dtype == np.int32
        full = Array.full(ref, 4, 2.5, np.float64)
        np.testing.assert_array_equal(full.view(), [2.5] * 4)

    def test_view_zero_copy_on_host(self, ref):
        arr = Array(ref, np.arange(5, dtype=np.float64))
        view = arr.view()
        view[0] = 42
        assert np.asarray(arr)[0] == 42

    def test_view_forbidden_on_device(self, cuda):
        arr = Array(cuda, np.arange(5, dtype=np.float64))
        with pytest.raises(ExecutorMismatch):
            arr.view()
        with pytest.raises(ExecutorMismatch):
            np.asarray(arr)

    def test_to_numpy_works_on_device(self, cuda):
        arr = Array(cuda, np.arange(5, dtype=np.float64))
        np.testing.assert_array_equal(arr.to_numpy(), np.arange(5))

    def test_copy_to_device_and_back(self, ref, cuda):
        arr = Array(ref, np.arange(8, dtype=np.float32))
        on_gpu = arr.copy_to(cuda)
        assert on_gpu.executor is cuda
        back = on_gpu.copy_to(ref)
        np.testing.assert_array_equal(back.view(), np.arange(8))

    def test_clone_is_independent(self, ref):
        arr = Array(ref, np.arange(5, dtype=np.float64))
        clone = arr.clone()
        clone.view()[0] = 99
        assert arr.view()[0] == 0

    def test_fill(self, ref):
        arr = Array.empty(ref, 5, np.float64)
        arr.fill(3.0)
        np.testing.assert_array_equal(arr.view(), [3.0] * 5)

    def test_len_and_nbytes(self, ref):
        arr = Array(ref, np.zeros(10, dtype=np.float64))
        assert len(arr) == 10
        assert arr.nbytes == 80

    def test_array_dtype_conversion(self, ref):
        arr = Array(ref, np.arange(3, dtype=np.float64))
        as32 = np.asarray(arr, dtype=np.float32)
        assert as32.dtype == np.float32
