"""Batched formats and solvers: bit-identity, masked stopping, threading."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from scipy.sparse.linalg import spsolve_triangular

from repro import bindings
from repro.ginkgo.batch import (
    BatchBicgstab,
    BatchCg,
    BatchCriteria,
    BatchCsr,
    BatchDense,
    BatchGmres,
    BatchJacobi,
    BatchLowerTrs,
    BatchUpperTrs,
)
from repro.ginkgo.exceptions import BadDimension, GinkgoError, SolverBreakdown
from repro.ginkgo.log import ConvergenceLogger, ProfilerHook
from repro.ginkgo.matrix import Csr, Dense
from repro.ginkgo.preconditioner import Jacobi
from repro.ginkgo.solver import Bicgstab, Cg, Gmres
from repro.ginkgo.stop import Divergence, Iteration, ResidualNorm
from repro.ginkgo.executor import OmpExecutor, ReferenceExecutor

SCALAR = {"cg": Cg, "bicgstab": Bicgstab, "gmres": Gmres}
BATCH = {"cg": BatchCg, "bicgstab": BatchBicgstab, "gmres": BatchGmres}


def make_batch(rng, n=30, K=6, spd=True):
    """K tridiagonal systems sharing a pattern, varied diagonals."""
    lower = -1.0 * np.ones(n - 1)
    upper = (-1.0 if spd else -0.6) * np.ones(n - 1)
    base = sp.diags([lower, 4.0 * np.ones(n), upper], [-1, 0, 1]).tocsr()
    mats = []
    for k in range(K):
        m = base.copy()
        m.setdiag(4.0 + (0.2 + 0.8 * k / K) * rng.random(n))
        m.sort_indices()
        mats.append(m.tocsr())
    bs = [rng.standard_normal((n, 1)) for _ in range(K)]
    return mats, bs


def crit():
    return Iteration(300) | ResidualNorm(1e-9, baseline="rhs_norm")


def scalar_solves(mats, bs, solver_cls, precond=False, **params):
    """Each system solved alone on a fresh executor; returns records."""
    out = []
    for mat, rhs in zip(mats, bs):
        ex = ReferenceExecutor.create(noisy=False)
        solver = solver_cls(
            ex,
            criteria=crit(),
            preconditioner=Jacobi(ex, max_block_size=1) if precond else None,
            **params,
        ).generate(Csr.from_scipy(ex, mat))
        logger = ConvergenceLogger()
        solver.add_logger(logger)
        x = Dense.create(ex, np.zeros_like(rhs))
        solver.apply(Dense.create(ex, rhs), x)
        out.append(
            (
                list(logger.residual_norms),
                x.to_numpy().copy(),
                logger.num_iterations,
                logger.converged,
            )
        )
    return out


def batch_solve(exec_, mats, bs, batch_cls, precond=False, **params):
    A = BatchCsr.from_scipy_list(exec_, mats)
    b = BatchDense.from_dense_list(exec_, bs)
    x = BatchDense.zeros(exec_, len(mats), (mats[0].shape[0], 1), np.float64)
    solver = batch_cls(
        exec_,
        criteria=crit(),
        preconditioner=BatchJacobi() if precond else None,
        **params,
    ).generate(A)
    loggers = [ConvergenceLogger() for _ in mats]
    for k, logger in enumerate(loggers):
        solver.add_system_logger(k, logger)
    status = solver.apply(b, x)
    return status, x, loggers


class TestFormats:
    def test_batch_dense_stacks_and_views(self, ref, rng):
        items = [rng.standard_normal((4, 2)) for _ in range(3)]
        batch = BatchDense.from_dense_list(ref, items)
        assert batch.num_systems == 3
        assert batch.shape == (3, 4, 2)
        assert np.array_equal(batch.item(1).to_numpy(), items[1])
        # item() is a view into the stacked buffer
        batch.item(1).fill(0.0)
        assert np.all(batch.data[1] == 0.0)

    def test_batch_dense_shape_mismatch_raises(self, ref, rng):
        with pytest.raises(BadDimension):
            BatchDense.from_dense_list(
                ref, [np.zeros((3, 1)), np.zeros((4, 1))]
            )

    def test_batch_csr_requires_shared_pattern(self, ref, rng):
        mats, _ = make_batch(rng, n=10, K=2)
        mats[1] = (mats[1] + sp.eye(10, k=2)).tocsr()
        with pytest.raises(GinkgoError, match="sparsity pattern"):
            BatchCsr.from_scipy_list(ref, mats)

    def test_batch_csr_item_and_diagonal(self, ref, rng):
        mats, _ = make_batch(rng, n=12, K=4)
        batch = BatchCsr.from_scipy_list(ref, mats)
        assert batch.num_systems == 4
        assert np.allclose(batch.item(2)._scipy_view().toarray(), mats[2].toarray())
        diag = batch.diagonal()
        assert diag.shape == (4, 12)
        for k in range(4):
            assert np.array_equal(diag[k], mats[k].diagonal())

    def test_batch_spmv_matches_per_system(self, ref, rng):
        mats, bs = make_batch(rng, n=20, K=5)
        batch = BatchCsr.from_scipy_list(ref, mats)
        b = BatchDense.from_dense_list(ref, bs)
        x = BatchDense.zeros(ref, 5, (20, 1), np.float64)
        batch.apply(b, x)
        for k in range(5):
            want = mats[k] @ bs[k]
            assert x.data[k].tobytes() == want.tobytes()


class TestBitIdentity:
    """A batched solve must reproduce K sequential scalar solves exactly."""

    @pytest.mark.parametrize("name", ["cg", "bicgstab", "gmres"])
    @pytest.mark.parametrize("precond", [False, True])
    def test_histories_and_solutions_bitwise_equal(self, ref, rng, name, precond):
        mats, bs = make_batch(rng, spd=(name == "cg"))
        scalar = scalar_solves(mats, bs, SCALAR[name], precond)
        status, x, loggers = batch_solve(ref, mats, bs, BATCH[name], precond)
        for k, (hist, sol, iters, conv) in enumerate(scalar):
            bhist = list(loggers[k].residual_norms)
            assert len(hist) == len(bhist)
            assert np.array(hist).tobytes() == np.array(bhist).tobytes()
            assert x.data[k].tobytes() == sol.tobytes()
            assert status.num_iterations[k] == iters
            assert bool(status.converged[k]) == bool(conv)
            assert status.residual_norms[k] == bhist

    def test_gmres_restart_waves_stay_identical(self, ref, rng):
        # krylov_dim smaller than the iteration count forces systems
        # through multiple restart waves at staggered exits.
        mats, bs = make_batch(rng, spd=False)
        scalar = scalar_solves(mats, bs, Gmres, krylov_dim=5)
        status, x, loggers = batch_solve(
            ref, mats, bs, BatchGmres, krylov_dim=5
        )
        for k, (hist, sol, iters, _) in enumerate(scalar):
            assert np.array(hist).tobytes() == np.array(
                loggers[k].residual_norms
            ).tobytes()
            assert x.data[k].tobytes() == sol.tobytes()
            assert status.num_iterations[k] == iters


class TestMaskedStopping:
    def test_mixed_convergence_early_system_freezes(self, ref, rng):
        # System 3 is near-trivially conditioned: it converges within a
        # couple of iterations while the others keep iterating.
        mats, bs = make_batch(rng, K=6)
        # Zero the off-diagonals in place (keeping the stored pattern) so
        # system 3 is diagonal: CG solves it in one iteration.
        mats[3] = mats[3].copy()
        mats[3].data[:] = 0.0
        mats[3].setdiag(4.0)
        mats[3].sort_indices()
        scalar = scalar_solves(mats, bs, Cg)
        status, x, loggers = batch_solve(ref, mats, bs, BatchCg)
        assert status.num_iterations[3] <= 2
        assert status.num_iterations[3] < status.num_iterations.max()
        # The early system's record is frozen at its stop iteration and
        # every later system still matches its solo solve exactly.
        for k, (hist, sol, iters, conv) in enumerate(scalar):
            assert status.num_iterations[k] == iters
            assert len(status.residual_norms[k]) == len(hist)
            assert np.array(hist).tobytes() == np.array(
                status.residual_norms[k]
            ).tobytes()
            assert x.data[k].tobytes() == sol.tobytes()
        assert status.all_converged

    def test_divergent_system_breaks_down_in_isolation(self, ref, rng):
        mats, bs = make_batch(rng, K=8)
        mats[7] = mats[7].copy()
        mats[7].data[0] = np.nan  # first SpMV poisons system 7 only
        status, x, loggers = batch_solve(ref, mats, bs, BatchCg)
        assert status.breakdown[7] and not status.converged[7]
        assert not status.residual_norms[7][-1:] or np.isfinite(
            status.residual_norms[7]
        ).all()  # breakdown iteration is never appended to the history
        healthy = scalar_solves(mats[:7], bs[:7], Cg)
        for k, (hist, sol, iters, conv) in enumerate(healthy):
            assert bool(status.converged[k]) and conv
            assert status.num_iterations[k] == iters
            assert x.data[k].tobytes() == sol.tobytes()
        assert status.num_converged == 7

    def test_strict_breakdown_raises_after_batch_completes(self, ref, rng):
        mats, bs = make_batch(rng, K=4)
        mats[2] = mats[2].copy()
        mats[2].data[0] = np.nan
        A = BatchCsr.from_scipy_list(ref, mats)
        b = BatchDense.from_dense_list(ref, bs)
        x = BatchDense.zeros(ref, 4, (30, 1), np.float64)
        solver = BatchCg(ref, criteria=crit(), strict_breakdown=True).generate(A)
        with pytest.raises(SolverBreakdown):
            solver.apply(b, x)
        # The healthy systems still ran to convergence before the raise.
        status = solver.status
        assert status.breakdown[2]
        assert status.num_converged == 3
        for k in (0, 1, 3):
            resid = mats[k] @ x.data[k] - bs[k]
            assert np.linalg.norm(resid) < 1e-8

    def test_already_converged_system_keeps_initial_guess(self, ref, rng):
        mats, bs = make_batch(rng, K=3)
        # System 1 starts at the exact solution: stopped at iteration 0.
        exact = np.linalg.solve(mats[1].toarray(), bs[1])
        A = BatchCsr.from_scipy_list(ref, mats)
        b = BatchDense.from_dense_list(ref, bs)
        guesses = [np.zeros((30, 1)), exact, np.zeros((30, 1))]
        x = BatchDense.from_dense_list(ref, guesses)
        before = x.data[1].copy()
        status = BatchCg(ref, criteria=crit()).generate(A).apply(b, x)
        assert status.num_iterations[1] == 0 and status.converged[1]
        assert x.data[1].tobytes() == before.tobytes()
        assert status.converged.all()


class TestBatchCriteria:
    def test_iteration_and_residual_combined_is_vectorized(self, ref):
        rhs = np.full((4, 1), 2.0)
        init = np.full((4, 1), 1.0)
        criteria = BatchCriteria(
            crit(), rhs, init, ref.clock, ref.clock.now
        )
        assert criteria.vectorized
        ids = np.arange(4)
        stop, conv = criteria.check(
            np.array([300, 1, 1, 1]),
            np.array([[1.0], [1e-10], [1.0], [3.0]]),
            ids,
        )
        assert stop.tolist() == [True, True, False, False]
        assert conv.tolist() == [False, True, False, False]

    def test_unknown_criterion_falls_back_to_per_system(self, ref):
        factory = Iteration(10) | Divergence(1e6)
        rhs = np.ones((3, 1))
        criteria = BatchCriteria(
            factory, rhs, rhs, ref.clock, ref.clock.now
        )
        assert not criteria.vectorized
        stop, _ = criteria.check(
            np.array([10, 2, 2]),
            np.array([[1.0], [1.0], [1e7]]),
            np.arange(3),
        )
        assert stop.tolist() == [True, False, True]


class TestTriangular:
    def _make_tri(self, rng, n=16, K=4):
        pattern = sp.tril(
            sp.random(n, n, density=0.3, random_state=2) + sp.eye(n)
        ).tocsr()
        lows = []
        for _ in range(K):
            low = pattern.copy()
            low.data = rng.random(low.data.size) + 0.5
            low.setdiag(1.0 + rng.random(n))
            low.sort_indices()
            lows.append(low.tocsr())
        return lows

    def test_lower_matches_scipy(self, ref, rng):
        lows = self._make_tri(rng)
        bs = [rng.standard_normal((16, 2)) for _ in lows]
        A = BatchCsr.from_scipy_list(ref, lows)
        b = BatchDense.from_dense_list(ref, bs)
        x = BatchDense.zeros(ref, len(lows), (16, 2), np.float64)
        BatchLowerTrs(ref).generate(A).apply(b, x)
        for k, low in enumerate(lows):
            want = spsolve_triangular(low, bs[k], lower=True)
            assert np.allclose(x.data[k], want, rtol=1e-12, atol=1e-13)

    def test_upper_matches_scipy(self, ref, rng):
        ups = [low.T.tocsr() for low in self._make_tri(rng)]
        bs = [rng.standard_normal((16, 1)) for _ in ups]
        A = BatchCsr.from_scipy_list(ref, ups)
        b = BatchDense.from_dense_list(ref, bs)
        x = BatchDense.zeros(ref, len(ups), (16, 1), np.float64)
        BatchUpperTrs(ref).generate(A).apply(b, x)
        for k, up in enumerate(ups):
            want = spsolve_triangular(up, bs[k], lower=False)
            assert np.allclose(x.data[k], want, rtol=1e-12, atol=1e-13)

    def test_unit_diagonal_skips_stored_diagonal(self, ref, rng):
        lows = self._make_tri(rng, K=2)
        bs = [rng.standard_normal((16, 1)) for _ in lows]
        A = BatchCsr.from_scipy_list(ref, lows)
        b = BatchDense.from_dense_list(ref, bs)
        x = BatchDense.zeros(ref, 2, (16, 1), np.float64)
        BatchLowerTrs(ref, unit_diagonal=True).generate(A).apply(b, x)
        dense0 = lows[0].toarray()
        np.fill_diagonal(dense0, 1.0)
        assert np.allclose(x.data[0], np.linalg.solve(dense0, bs[0]))

    def test_zero_diagonal_rejected(self, ref, rng):
        lows = self._make_tri(rng, K=2)
        lows[1] = lows[1].copy()
        lows[1].setdiag(0.0)
        A = BatchCsr.from_scipy_list(ref, lows)
        with pytest.raises(GinkgoError, match="diagonal"):
            BatchLowerTrs(ref).generate(A)


class TestOmpThreading:
    def test_threaded_batch_identical_to_reference(self, ref, omp, rng):
        mats, bs = make_batch(rng, K=16)
        st_ref, x_ref, _ = batch_solve(ref, mats, bs, BatchCg)
        st_omp, x_omp, _ = batch_solve(omp, mats, bs, BatchCg)
        assert x_ref.data.tobytes() == x_omp.data.tobytes()
        for k in range(16):
            assert st_ref.residual_norms[k] == st_omp.residual_norms[k]

    def test_partition_count_matches_num_threads(self, omp, rng):
        # Every threaded batched SpMV region splits into exactly
        # num_threads sub-batches — the pool is demonstrably engaged.
        mats, bs = make_batch(rng, K=16)
        before_regions = omp.pool_regions
        before_parts = omp.pool_partitions
        batch_solve(omp, mats, bs, BatchCg)
        regions = omp.pool_regions - before_regions
        partitions = omp.pool_partitions - before_parts
        assert regions > 0
        assert partitions == regions * omp.num_threads

    def test_profiler_shows_per_thread_partition_spans(self, rng):
        omp = OmpExecutor.create(num_threads=4, noisy=False)
        mats, bs = make_batch(rng, K=8)
        prof = ProfilerHook()
        prof.attach(omp)
        try:
            batch_solve(omp, mats, bs, BatchCg)
        finally:
            prof.detach(omp)
        prof.close()
        assert prof.trace.find("spmv_batch_csr[omp]")
        for t in range(4):
            assert prof.trace.find(f"spmv_batch_csr[t{t}]")

    def test_small_active_set_falls_back_to_serial(self, rng):
        # Fewer active systems than threads: no pool dispatch.
        omp = OmpExecutor.create(num_threads=8, noisy=False)
        mats, bs = make_batch(rng, K=3)
        before = omp.pool_regions
        batch_solve(omp, mats, bs, BatchCg)
        assert omp.pool_regions == before


class TestBindings:
    def test_batch_symbols_are_registered_per_value_type(self):
        names = bindings.binding_names()
        for vt in ("half", "float", "double"):
            assert f"batch_cg_factory_{vt}" in names
            assert f"batch_bicgstab_factory_{vt}" in names
            assert f"batch_gmres_factory_{vt}" in names
            assert f"batch_jacobi_factory_{vt}" in names
            assert f"batch_dense_{vt}" in names
        assert "batch_csr_double_int32" in names

    def test_resolve_routes_batch_factory_through_dispatch_cache(self, ref):
        binding = bindings.resolve(
            "batch_cg_factory", np.float64, exec_=ref
        )
        assert binding._binding_tag == "batch_cg_factory_double"
        factory = binding(ref, criteria=crit())
        assert isinstance(factory, BatchCg)

    def test_public_namespace_end_to_end(self, rng):
        import repro as pg

        dev = pg.device("reference", noisy=False)
        mats, bs = make_batch(rng, K=5)
        A = pg.batch.matrices(dev, mats)
        b = pg.batch.vectors(dev, bs)
        x = pg.batch.zeros_like(b)
        solver = pg.batch.cg(
            dev, A, preconditioner=pg.batch.jacobi(dev),
            max_iters=200, reduction_factor=1e-9,
        )
        loggers, x = solver.apply(b, x)
        assert solver.status.all_converged
        assert len(loggers) == 5
        for k in range(5):
            resid = mats[k] @ x.data[k] - bs[k]
            assert np.linalg.norm(resid) <= 1e-9 * np.linalg.norm(bs[k]) * 1.01
            assert loggers[k].residual_norms == solver.status.residual_norms[k]


class TestBatchStatusSequence:
    """BatchStatus behaves as a sequence of per-system records."""

    def _solved_status(self, ref, rng, K=5):
        mats, bs = make_batch(rng, K=K)
        mat = BatchCsr.from_scipy_list(ref, mats)
        solver = BatchCg(ref, criteria=crit()).generate(mat)
        b = BatchDense.from_dense_list(ref, bs)
        x = BatchDense.zeros(ref, K, (mats[0].shape[0], 1), np.float64)
        solver.apply(b, x)
        return solver.status

    def test_len_and_indexing(self, ref, rng):
        status = self._solved_status(ref, rng, K=5)
        assert len(status) == 5
        assert status[0] == status.system(0)
        assert status[-1] == status.system(4)
        assert status[1]["converged"]
        assert status[1]["num_iterations"] > 0

    def test_iteration_and_slicing(self, ref, rng):
        status = self._solved_status(ref, rng, K=5)
        records = list(status)
        assert len(records) == 5
        assert records == [status.system(k) for k in range(5)]
        assert status[1:3] == [status.system(1), status.system(2)]
        assert status[::-1][0] == status.system(4)

    def test_out_of_range(self, ref, rng):
        status = self._solved_status(ref, rng, K=3)
        with pytest.raises(IndexError):
            status[3]
        with pytest.raises(IndexError):
            status[-4]


class TestBatchCsrStackedSize:
    """BatchCsr accepts the stacked (K, rows, cols) size tuple."""

    def _pattern(self, rng, n=12, K=4):
        base = sp.random(
            n, n, density=0.3, random_state=rng, format="csr"
        ) + sp.eye(n)
        base = base.tocsr()
        base.sort_indices()
        values = np.stack([base.data * (k + 1.0) for k in range(K)])
        return base, values

    def test_stacked_size_equals_per_system_size(self, ref, rng):
        base, values = self._pattern(rng)
        a = BatchCsr(ref, (12, 12), base.indptr, base.indices, values)
        b = BatchCsr(ref, (4, 12, 12), base.indptr, base.indices, values)
        assert a.size == b.size
        assert a.num_systems == b.num_systems == 4
        np.testing.assert_array_equal(a.values, b.values)

    def test_stacked_size_mismatched_batch_dim(self, ref, rng):
        base, values = self._pattern(rng)  # 4 systems
        with pytest.raises(BadDimension, match="names 3 systems"):
            BatchCsr(ref, (3, 12, 12), base.indptr, base.indices, values)

    def test_malformed_size_mentions_both_conventions(self, ref, rng):
        base, values = self._pattern(rng)
        with pytest.raises(BadDimension, match="stacked"):
            BatchCsr(
                ref, (12, 12, 12, 12), base.indptr, base.indices, values
            )


class TestBatchHandleStats:
    """pg.batch solver handles expose post-apply solve statistics."""

    def test_handle_stats_after_apply(self, rng):
        import repro as pg

        dev = pg.device("reference", noisy=False)
        mats, bs = make_batch(rng, K=4)
        A = pg.batch.matrices(dev, mats)
        b = pg.batch.vectors(dev, bs)
        x = pg.batch.zeros_like(b)
        solver = pg.batch.cg(dev, A, max_iters=200, reduction_factor=1e-9)
        solver.apply(b, x)
        assert solver.all_converged
        assert solver.converged.all()
        assert (solver.num_iterations > 0).all()
        assert (solver.final_residual_norm < 1e-6).all()
        np.testing.assert_array_equal(
            solver.num_iterations, solver.status.num_iterations
        )
