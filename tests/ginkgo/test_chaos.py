"""Chaos suite: seeded fault schedules across scalar, batch, distributed.

Every scenario runs a *deterministic* fault schedule (exact call indices,
seeded injector) and asserts the recovery contract from DESIGN.md:
recovered solves are bit-identical to fault-free ones where the contract
promises it, and truthfully degraded (``timed_out``/``partial``/
quarantine flags) where it does not.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

import repro as pg
from repro.core import (
    CircuitBreaker,
    FallbackChain,
    RetryPolicy,
    batch_api,
    resilient_batch_solve,
    resilient_solve,
)
from repro.core.io import matrix as make_matrix
from repro.core.solver_api import _unwrap
from repro.ginkgo.distributed import (
    Communicator,
    DistributedCg,
    DistributedGmres,
    Matrix,
    Partition,
    Vector,
)
from repro.ginkgo.exceptions import (
    CommunicationError,
    GinkgoError,
    RankFailure,
    ResilienceExhausted,
)
from repro.ginkgo.executor import OmpExecutor, ReferenceExecutor
from repro.ginkgo.fault import FaultInjector, FaultyExecutor
from repro.ginkgo.log import ConvergenceLogger
from repro.ginkgo.matrix import Csr, Dense
from repro.ginkgo.stop import Deadline, Iteration, ResidualNorm
from repro.perfmodel.kernels import KernelCost


def spd_matrix(rng, n=120, density=0.05):
    mat = sp.random(n, n, density=density, random_state=rng, format="csr")
    mat = mat + mat.T
    shift = np.abs(mat).sum(axis=1).max() + 1.0
    return sp.csr_matrix(mat + sp.eye(n) * shift)


def crit(iters=300, tol=1e-10):
    return Iteration(iters) | ResidualNorm(tol, baseline="rhs_norm")


def faulty_omp(num_threads=4, **injector_kwargs):
    injector = FaultInjector(**injector_kwargs)
    exec_ = FaultyExecutor.create(
        OmpExecutor.create(num_threads=num_threads, noisy=False), injector
    )
    return exec_, injector


def dist_solve(exec_, mat, b, factory_cls, num_ranks=4, **params):
    """One distributed solve; returns (solver, history, solution)."""
    part = Partition.build_uniform(mat.shape[0], num_ranks)
    dist = Matrix(exec_, part, mat)
    db = Vector(exec_, part, b, comm=dist.comm)
    dx = Vector.zeros(exec_, part, comm=dist.comm)
    solver = factory_cls(exec_, criteria=crit(), **params).generate(dist)
    logger = ConvergenceLogger()
    solver.add_logger(logger)
    solver.apply(db, dx)
    return solver, list(logger.residual_norms), dx.to_numpy()


DIST_CASES = [
    (DistributedCg, {}),
    (DistributedGmres, {"krylov_dim": 20}),
]
DIST_IDS = ["cg", "gmres"]


# ----------------------------------------------------------------------
# Shrink / repartition primitives
# ----------------------------------------------------------------------
class TestShrink:
    def test_partition_shrink_merges_into_predecessor(self):
        part = Partition(10, [(0, 3), (3, 6), (6, 10)])
        shrunk = part.shrink(1)
        assert shrunk.num_ranks == 2
        assert list(shrunk) == [(0, 6), (6, 10)]
        assert shrunk.global_size == 10

    def test_partition_shrink_rank_zero_merges_into_successor(self):
        part = Partition(10, [(0, 3), (3, 6), (6, 10)])
        shrunk = part.shrink(0)
        assert list(shrunk) == [(0, 6), (6, 10)]

    def test_partition_shrink_validates(self):
        part = Partition.build_uniform(10, 2)
        with pytest.raises(IndexError):
            part.shrink(2)
        single = part.shrink(0)
        with pytest.raises(GinkgoError):
            single.shrink(0)

    def test_communicator_shrink_counts(self, ref):
        comm = Communicator(ref, num_ranks=4)
        assert comm.shrink(2) == 3
        assert comm.num_ranks == 3
        assert comm.num_shrinks == 1
        with pytest.raises(GinkgoError):
            one = Communicator(ref, num_ranks=1)
            one.shrink(0)

    def test_matrix_repartition_preserves_operator_bitwise(self, omp, rng):
        mat = spd_matrix(rng, n=60)
        part = Partition.build_uniform(60, 4)
        dist = Matrix(omp, part, mat)
        v = rng.standard_normal(60)
        x = Vector(omp, part, v, comm=dist.comm)
        y = Vector.zeros(omp, part, comm=dist.comm)
        dist.apply(x, y)
        before = y.to_numpy().copy()

        shrunk = part.shrink(1)
        dist.comm.shrink(1)
        dist.repartition(shrunk, lost_rows=part.range_of(1))
        x2 = Vector(omp, shrunk, v, comm=dist.comm)
        y2 = Vector.zeros(omp, shrunk, comm=dist.comm)
        dist.apply(x2, y2)
        assert y2.to_numpy().tobytes() == before.tobytes()

    def test_vector_repartition_rejects_wrong_size(self, ref, rng):
        part = Partition.build_uniform(10, 2)
        vec = Vector(ref, part, rng.standard_normal(10))
        with pytest.raises(Exception):
            vec.repartition(Partition.build_uniform(12, 2))


# ----------------------------------------------------------------------
# Distributed recovery: the bit-identity contract
# ----------------------------------------------------------------------
@pytest.mark.parametrize("factory_cls,params", DIST_CASES, ids=DIST_IDS)
class TestDistributedRecovery:
    def fault_free(self, rng, factory_cls, params):
        mat = spd_matrix(rng)
        b = np.random.default_rng(5).standard_normal(mat.shape[0])
        ex = OmpExecutor.create(num_threads=4, noisy=False)
        solver, hist, x = dist_solve(ex, mat, b, factory_cls, **params)
        assert solver.converged
        return mat, b, hist, x

    def test_rank_failure_recovers_bit_identical(
        self, rng, factory_cls, params
    ):
        mat, b, hist, x = self.fault_free(rng, factory_cls, params)
        ex, injector = faulty_omp(schedule={"rank": [(6, "failure")]})
        solver, fhist, fx = dist_solve(ex, mat, b, factory_cls, **params)
        assert solver.converged
        assert solver.num_recoveries == 1
        assert solver.comm.num_shrinks == 1
        assert solver.comm.num_ranks == 3
        assert [e["event"] for e in solver.recovery_events] == [
            "rank_recovered"
        ]
        assert len(injector.injected) == 1
        assert injector.injected[0].kind == "failure"
        assert np.asarray(fhist).tobytes() == np.asarray(hist).tobytes()
        assert fx.tobytes() == x.tobytes()

    def test_halo_drop_replays_bit_identical(self, rng, factory_cls, params):
        mat, b, hist, x = self.fault_free(rng, factory_cls, params)
        ex, injector = faulty_omp(schedule={"halo": [(5, "drop")]})
        solver, fhist, fx = dist_solve(ex, mat, b, factory_cls, **params)
        assert solver.converged
        assert solver.num_recoveries == 1
        assert solver.comm.num_shrinks == 0
        assert [e["event"] for e in solver.recovery_events] == [
            "replay_recovered"
        ]
        assert np.asarray(fhist).tobytes() == np.asarray(hist).tobytes()
        assert fx.tobytes() == x.tobytes()

    def test_allreduce_corruption_detected_and_replayed(
        self, rng, factory_cls, params
    ):
        mat, b, hist, x = self.fault_free(rng, factory_cls, params)
        ex, injector = faulty_omp(
            schedule={"allreduce": [(4, "corruption")]}
        )
        solver, fhist, fx = dist_solve(ex, mat, b, factory_cls, **params)
        assert solver.converged
        assert solver.num_recoveries == 1
        assert np.asarray(fhist).tobytes() == np.asarray(hist).tobytes()
        assert fx.tobytes() == x.tobytes()

    def test_delay_faults_converge_and_trace_fault_time(
        self, rng, factory_cls, params
    ):
        mat, b, hist, x = self.fault_free(rng, factory_cls, params)
        ex, injector = faulty_omp(
            schedule={
                "halo": [(3, "late"), (7, "duplicate")],
                "allreduce": [(2, "straggler")],
            }
        )
        with pg.profile(ex) as prof:
            solver, fhist, fx = dist_solve(
                ex, mat, b, factory_cls, **params
            )
        assert solver.converged
        # Delays never change numerics, only the clock.
        assert solver.num_recoveries == 0
        assert np.asarray(fhist).tobytes() == np.asarray(hist).tobytes()
        fault_seconds = sum(
            span.duration
            for span in prof.trace.walk()
            if span.category == "fault"
        )
        assert fault_seconds > 0.0

    def test_recovery_budget_exhausts_truthfully(
        self, rng, factory_cls, params
    ):
        mat = spd_matrix(rng)
        b = rng.standard_normal(mat.shape[0])
        ex, _ = faulty_omp(schedule={"halo": [(5, "drop")]})
        part = Partition.build_uniform(mat.shape[0], 4)
        dist = Matrix(ex, part, mat)
        db = Vector(ex, part, b, comm=dist.comm)
        dx = Vector.zeros(ex, part, comm=dist.comm)
        solver = DistributedCg(
            ex, criteria=crit(), max_recoveries=0
        ).generate(dist)
        with pytest.raises(CommunicationError):
            solver.apply(db, dx)

    def test_same_schedule_same_recovery_trail(
        self, rng, factory_cls, params
    ):
        mat = spd_matrix(rng)
        b = rng.standard_normal(mat.shape[0])
        trails = []
        for _ in range(2):
            ex, _ = faulty_omp(schedule={"rank": [(6, "failure")]})
            solver, fhist, _ = dist_solve(ex, mat, b, factory_cls, **params)
            trails.append((solver.recovery_events, fhist))
        assert trails[0] == trails[1]


class TestPipelinedRecovery:
    """Non-blocking path: faults surface at wait time, recovery replays.

    The pipelined solvers relax bit-identity against *blocking* CG, but
    their fault-tolerance contract is unchanged: a recovered solve must
    be bit-identical to the same solver's own fault-free run.
    """

    def fault_free(self, rng, factory_cls, **params):
        mat = spd_matrix(rng)
        b = np.random.default_rng(5).standard_normal(mat.shape[0])
        ex = OmpExecutor.create(num_threads=4, noisy=False)
        solver, hist, x = dist_solve(ex, mat, b, factory_cls, **params)
        assert solver.converged
        return mat, b, hist, x

    @pytest.mark.parametrize(
        "schedule,expected_event",
        [
            ({"allreduce": [(4, "corruption")]}, "replay_recovered"),
            ({"halo": [(5, "drop")]}, "replay_recovered"),
            ({"rank": [(6, "failure")]}, "rank_recovered"),
        ],
        ids=["allreduce-corruption", "halo-drop", "rank-failure"],
    )
    def test_pipelined_cg_recovers_bit_identical(
        self, rng, schedule, expected_event
    ):
        from repro.ginkgo.distributed import DistributedPipelinedCg

        mat, b, hist, x = self.fault_free(rng, DistributedPipelinedCg)
        ex, injector = faulty_omp(schedule=schedule)
        solver, fhist, fx = dist_solve(ex, mat, b, DistributedPipelinedCg)
        assert solver.converged
        assert solver.num_recoveries == 1
        assert [e["event"] for e in solver.recovery_events] == [
            expected_event
        ]
        assert len(injector.injected) == 1
        assert np.asarray(fhist).tobytes() == np.asarray(hist).tobytes()
        assert fx.tobytes() == x.tobytes()

    def test_pipelined_cg_stragglers_only_cost_time(self, rng):
        from repro.ginkgo.distributed import DistributedPipelinedCg

        mat, b, hist, x = self.fault_free(rng, DistributedPipelinedCg)
        ex, injector = faulty_omp(
            schedule={
                "allreduce": [(3, "straggler")],
                "halo": [(4, "late")],
            }
        )
        with pg.profile(ex) as prof:
            solver, fhist, fx = dist_solve(
                ex, mat, b, DistributedPipelinedCg
            )
        assert solver.converged
        assert solver.num_recoveries == 0
        assert np.asarray(fhist).tobytes() == np.asarray(hist).tobytes()
        assert fx.tobytes() == x.tobytes()
        fault_seconds = sum(
            span.duration
            for span in prof.trace.walk()
            if span.category == "fault"
        )
        assert fault_seconds > 0.0

    def test_sstep_gmres_recovers_bit_identical(self, rng):
        from repro.ginkgo.distributed import DistributedSStepGmres

        mat, b, hist, x = self.fault_free(
            rng, DistributedSStepGmres, s_step=4
        )
        ex, injector = faulty_omp(
            schedule={"allreduce": [(3, "corruption")]}
        )
        solver, fhist, fx = dist_solve(
            ex, mat, b, DistributedSStepGmres, s_step=4
        )
        assert solver.converged
        assert solver.num_recoveries == 1
        assert np.asarray(fhist).tobytes() == np.asarray(hist).tobytes()
        assert fx.tobytes() == x.tobytes()

    def test_pipelined_budget_exhausts_truthfully(self, rng):
        from repro.ginkgo.distributed import DistributedPipelinedCg

        mat = spd_matrix(rng)
        b = rng.standard_normal(mat.shape[0])
        ex, _ = faulty_omp(schedule={"allreduce": [(4, "corruption")]})
        part = Partition.build_uniform(mat.shape[0], 4)
        dist = Matrix(ex, part, mat)
        db = Vector(ex, part, b, comm=dist.comm)
        dx = Vector.zeros(ex, part, comm=dist.comm)
        solver = DistributedPipelinedCg(
            ex, criteria=crit(), max_recoveries=0
        ).generate(dist)
        with pytest.raises(GinkgoError):
            solver.apply(db, dx)


class TestSequentialRanksContractRelaxed:
    def test_shrink_under_sequential_mode_still_converges(self, rng):
        # The documented carve-out: rank-sequential reductions relax the
        # reduction order after a shrink, so only convergence (not
        # bit-identity) is promised there.
        mat = spd_matrix(rng)
        b = rng.standard_normal(mat.shape[0])
        ex, injector = faulty_omp(schedule={"rank": [(6, "failure")]})
        part = Partition.build_uniform(mat.shape[0], 4)
        dist = Matrix(ex, part, mat)
        db = Vector(ex, part, b, comm=dist.comm)
        dx = Vector.zeros(ex, part, comm=dist.comm)
        solver = DistributedCg(ex, criteria=crit()).generate(dist)
        with pg.distributed.sequential_ranks():
            solver.apply(db, dx)
        assert solver.converged
        assert solver.num_recoveries == 1
        res = b - mat @ dx.to_numpy().ravel()
        assert np.linalg.norm(res) / np.linalg.norm(b) < 1e-8


# ----------------------------------------------------------------------
# FaultyExecutor routing (satellite: batch/distributed sites through
# the wrapper)
# ----------------------------------------------------------------------
class TestFaultyExecutorRouting:
    def test_run_partitioned_delegates_to_thread_pool(self):
        ex, _ = faulty_omp(num_threads=4)
        out = ex.run_partitioned(
            KernelCost("k", 4.0, 0.0),
            [lambda i=i: i * 10 for i in range(4)],
            [1.0] * 4,
        )
        assert out == [0, 10, 20, 30]

    def test_run_partitioned_serial_fallback_without_pool(self):
        injector = FaultInjector()
        ex = FaultyExecutor.create(
            ReferenceExecutor.create(noisy=False), injector
        )
        out = ex.run_partitioned(
            KernelCost("k", 4.0, 0.0),
            [lambda i=i: i + 1 for i in range(3)],
            [1.0] * 3,
        )
        assert out == [1, 2, 3]

    def test_distributed_solve_on_wrapped_reference(self, rng):
        mat = spd_matrix(rng, n=50)
        b = rng.standard_normal(50)
        injector = FaultInjector()
        ex = FaultyExecutor.create(
            ReferenceExecutor.create(noisy=False), injector
        )
        solver, hist, x = dist_solve(ex, mat, b, DistributedCg, num_ranks=3)
        assert solver.converged

    def test_batch_site_fires_through_wrapper(self, rng):
        ex, injector = faulty_omp(schedule={"batch": [(0, "corruption")]})
        base = spd_matrix(rng, n=30)
        mats = [
            sp.csr_matrix(
                (base.data * (1 + 0.1 * k), base.indices, base.indptr),
                shape=base.shape,
            )
            for k in range(4)
        ]
        mtx = batch_api.matrices(ex, mats)
        b = batch_api.vectors(
            ex, [rng.standard_normal(30) for _ in range(4)]
        )
        handle = batch_api.cg(ex, mtx, max_iters=200)
        handle.apply(b, batch_api.zeros_like(b))
        assert [f.site for f in injector.injected] == ["batch"]
        # Exactly one system hit breakdown and was compacted out.
        assert int(handle.status.breakdown.sum()) == 1
        clean = ~handle.status.breakdown
        assert bool(handle.status.converged[clean].all())


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------
class TestDeadline:
    def test_validates_non_finite(self):
        with pytest.raises(GinkgoError):
            Deadline(float("inf"))

    def test_stops_solver_and_flags_timed_out(self, ref, rng):
        mat = spd_matrix(rng, n=60)
        b = rng.standard_normal((60, 1))
        mtx = Csr.from_scipy(ref, mat)
        from repro.ginkgo.solver import Cg

        solver = Cg(
            ref, criteria=crit() | Deadline(ref.clock.now + 1e-12)
        ).generate(mtx)
        x = Dense.zeros(ref, (60, 1), np.float64)
        solver.apply(Dense.create(ref, b), x)
        assert solver.timed_out
        assert not solver.converged

    def test_resilient_solve_deadline_partial_result(self, rng):
        mat = spd_matrix(rng)
        b = rng.standard_normal(mat.shape[0])
        dev = pg.device("reference", fresh=True)
        mtx = make_matrix(dev, mat)
        report, x = resilient_solve(
            dev,
            mtx,
            Dense.create(dev, b),
            solver="cg",
            fallback=FallbackChain(dev),
            deadline=1e-9,
        )
        assert report.timed_out and report.partial
        assert not report.converged
        assert report.count("deadline_exceeded") == 1

    def test_resilient_solve_generous_deadline_converges(self, rng):
        mat = spd_matrix(rng)
        b = rng.standard_normal(mat.shape[0])
        dev = pg.device("reference", fresh=True)
        mtx = make_matrix(dev, mat)
        report, x = resilient_solve(
            dev,
            mtx,
            Dense.create(dev, b),
            solver="cg",
            fallback=FallbackChain(dev),
            deadline=1e9,
        )
        assert report.converged
        assert not report.timed_out and not report.partial
        assert report.count("deadline_exceeded") == 0

    def test_deadline_spans_retries(self, rng):
        # Backoff delays consume the budget: with a deadline shorter than
        # the first backoff, a faulting solve must return partial instead
        # of burning all retries.
        mat = spd_matrix(rng)
        b = rng.standard_normal(mat.shape[0])
        injector = FaultInjector(
            schedule={"run": [(k, "transient") for k in range(0, 2000)]}
        )
        dev = FaultyExecutor.create(
            ReferenceExecutor.create(noisy=False), injector
        )
        with injector.paused():
            mtx = make_matrix(dev, mat)
            rhs = Dense.create(dev, b)
        report, x = resilient_solve(
            dev,
            mtx,
            rhs,
            solver="cg",
            fallback=FallbackChain(dev),
            retry=RetryPolicy(max_retries=50, base_delay=1.0),
            deadline=2.5,
        )
        assert report.timed_out and report.partial
        assert report.attempts < 50


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_opens_after_threshold(self, ref):
        brk = CircuitBreaker(failure_threshold=2, cooldown=10.0)
        assert not brk.is_open(ref)
        assert not brk.record_failure(ref)
        assert brk.record_failure(ref)
        assert brk.is_open(ref)
        assert brk.state(ref.name) == "open"

    def test_half_open_probe_after_cooldown(self, ref):
        brk = CircuitBreaker(failure_threshold=2, cooldown=0.5)
        brk.record_failure(ref)
        brk.record_failure(ref)
        assert brk.is_open(ref)
        ref.clock.advance(1.0, category="stall")
        # Cooldown expired: one probe admitted...
        assert not brk.is_open(ref)
        # ...and a single failure re-opens immediately.
        assert brk.record_failure(ref)
        assert brk.is_open(ref)

    def test_success_closes(self, ref):
        brk = CircuitBreaker(failure_threshold=1, cooldown=100.0)
        brk.record_failure(ref)
        assert brk.is_open(ref)
        brk.record_success(ref)
        assert not brk.is_open(ref)
        assert brk.state(ref.name) == "closed"

    def test_validation(self):
        with pytest.raises(GinkgoError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(GinkgoError):
            CircuitBreaker(cooldown=-1.0)

    def test_resilient_solve_opens_and_skips(self, rng):
        mat = spd_matrix(rng)
        b = rng.standard_normal(mat.shape[0])
        injector = FaultInjector(
            schedule={"run": [(k, "transient") for k in range(5000)]}
        )
        dev = FaultyExecutor.create(
            ReferenceExecutor.create(noisy=False), injector
        )
        with injector.paused():
            mtx = make_matrix(dev, mat)
            rhs = Dense.create(dev, b)
        brk = CircuitBreaker(failure_threshold=2, cooldown=1e6)
        with pytest.raises(ResilienceExhausted):
            resilient_solve(
                dev,
                mtx,
                rhs,
                solver="cg",
                fallback=FallbackChain(dev, breaker=brk),
                retry=RetryPolicy(max_retries=5),
            )
        assert brk.state(dev.name) == "open"
        # A second solve through the same breaker is refused up front.
        with pytest.raises(ResilienceExhausted) as info:
            resilient_solve(
                dev,
                mtx,
                rhs,
                solver="cg",
                fallback=FallbackChain(dev, breaker=brk),
                retry=RetryPolicy(max_retries=5),
            )
        assert info.value.attempts == 0


# ----------------------------------------------------------------------
# Workspace-clearing retries (satellite 2)
# ----------------------------------------------------------------------
class TestWorkspaceClearedRetry:
    def test_retry_clears_poisoned_workspace(self, rng):
        # Injected copy-corruption NaN-poisons a buffer mid-solve; the
        # retry must clear the solver's pooled workspace so the poison
        # cannot survive into the rerun.
        mat = spd_matrix(rng)
        b = rng.standard_normal(mat.shape[0])

        dev = pg.device("reference", fresh=True)
        mtx0 = make_matrix(dev, mat)
        clean, _ = resilient_solve(
            dev,
            mtx0,
            Dense.create(dev, b),
            solver="cg",
            fallback=FallbackChain(dev),
        )
        assert clean.converged

        injector = FaultInjector(
            corruption_rate=1.0, max_faults=1, corruption_mode="nan"
        )
        fdev = FaultyExecutor.create(
            ReferenceExecutor.create(noisy=False), injector
        )
        with injector.paused():
            mtx = make_matrix(fdev, mat)
            rhs = Dense.create(fdev, b)
        report, x = resilient_solve(
            fdev,
            mtx,
            rhs,
            solver="cg",
            fallback=FallbackChain(fdev),
        )
        assert report.converged
        assert report.count("workspace_cleared") == report.retries
        assert report.retries >= 1
        assert np.all(np.isfinite(_unwrap(x)._data))
        assert (
            report.final_residual_norm == clean.final_residual_norm
        )

    def test_handle_reused_across_retries(self, rng):
        # The workspace-clearing contract implies one solver handle per
        # executor: allocations must not grow per retry.
        mat = spd_matrix(rng)
        b = rng.standard_normal(mat.shape[0])
        injector = FaultInjector(
            schedule={"run": [(10, "transient"), (30, "transient")]}
        )
        fdev = FaultyExecutor.create(
            ReferenceExecutor.create(noisy=False), injector
        )
        with injector.paused():
            mtx = make_matrix(fdev, mat)
            rhs = Dense.create(fdev, b)
        report, _ = resilient_solve(
            fdev, mtx, rhs, solver="cg", fallback=FallbackChain(fdev)
        )
        assert report.converged
        assert report.retries == 2
        assert report.count("workspace_cleared") == 2


# ----------------------------------------------------------------------
# Batch quarantine and per-system recovery
# ----------------------------------------------------------------------
class TestBatchChaos:
    def batch_system(self, exec_, rng, K=5, n=40):
        base = spd_matrix(rng, n=n)
        mats = [
            sp.csr_matrix(
                (base.data * (1 + 0.05 * k), base.indices, base.indptr),
                shape=base.shape,
            )
            for k in range(K)
        ]
        mtx = batch_api.matrices(exec_, mats)
        b = batch_api.vectors(
            exec_, [rng.standard_normal(n) for _ in range(K)]
        )
        return mats, mtx, b

    def test_corruption_quarantines_and_recovers(self, rng):
        ex, injector = faulty_omp(schedule={"batch": [(2, "corruption")]})
        mats, mtx, b = self.batch_system(ex, rng)
        report, x = resilient_batch_solve(ex, mtx, b, solver="cg")
        assert len(report.quarantined) == 1
        assert report.recovered == report.quarantined
        assert report.all_converged
        assert report.count("system_quarantined") == 1
        assert report.count("system_recovered") == 1
        # Every returned solution actually solves its system.
        for k in range(len(mats)):
            sol = x.item(k).to_numpy().ravel()
            rhs = b._data[k].ravel()
            res = np.linalg.norm(rhs - mats[k] @ sol)
            assert res / np.linalg.norm(rhs) < 1e-6

    def test_fault_free_batch_reports_clean(self, rng):
        ex = OmpExecutor.create(num_threads=4, noisy=False)
        mats, mtx, b = self.batch_system(ex, rng)
        report, x = resilient_batch_solve(ex, mtx, b, solver="cg")
        assert report.quarantined == []
        assert report.recovered == []
        assert report.all_converged
        assert report.attempts == 1

    def test_whole_batch_transient_fault_retries(self, rng):
        ex, injector = faulty_omp(schedule={"run": [(8, "transient")]})
        with injector.paused():
            mats, mtx, b = self.batch_system(ex, rng)
        report, x = resilient_batch_solve(ex, mtx, b, solver="cg")
        assert report.all_converged
        assert report.count("retry") == 1

    def test_metrics_fed(self, rng):
        from repro.ginkgo.log import MetricsRegistry

        ex, injector = faulty_omp(schedule={"batch": [(2, "corruption")]})
        mats, mtx, b = self.batch_system(ex, rng)
        metrics = MetricsRegistry()
        report, _ = resilient_batch_solve(
            ex, mtx, b, solver="cg", metrics=metrics
        )
        assert metrics.counter("batch_solves").value == 1
        assert metrics.counter("batch_systems").value == len(mats)
        assert metrics.counter("batch_quarantined").value == 1
        assert metrics.counter("batch_recovered").value == 1


# ----------------------------------------------------------------------
# Checkpoint restart with preconditioners; Divergence reporting
# (satellite 3)
# ----------------------------------------------------------------------
class TestCheckpointedPreconditionedRestart:
    def run_once(self, mat, b, precond, injector):
        fdev = FaultyExecutor.create(
            ReferenceExecutor.create(noisy=False), injector
        )
        with injector.paused():
            mtx = make_matrix(fdev, mat)
            rhs = Dense.create(fdev, b)
        return resilient_solve(
            fdev,
            mtx,
            rhs,
            solver="cg",
            preconditioner=precond,
            reduction_factor=1e-10,
            fallback=FallbackChain(fdev),
            checkpoint_every=2,
        )

    @pytest.mark.parametrize("precond", ["jacobi", "ilu"])
    def test_restart_resumes_with_preconditioner(self, rng, precond):
        mat = spd_matrix(rng, n=150, density=0.03)
        b = rng.standard_normal(mat.shape[0])
        # Probe the fault-free run-site call count so the scheduled fault
        # deterministically lands in the solve's final iterations, after
        # at least one checkpoint was captured.
        probe = FaultInjector()
        self.run_once(mat, b, precond, probe)
        total_runs = probe._calls["run"]
        assert total_runs > 4
        injector = FaultInjector(
            schedule={"run": [(total_runs - 3, "transient")]}
        )
        report, x = self.run_once(mat, b, precond, injector)
        assert report.converged
        assert report.retries == 1
        assert report.count("checkpoint_restored") == 1
        restarts = [
            p["restart_iteration"]
            for name, p in report.events
            if name == "retry"
        ]
        assert restarts and restarts[0] > 0
        res = b - mat @ _unwrap(x)._data.ravel()
        assert np.linalg.norm(res) / np.linalg.norm(b) < 1e-8


class TestDivergenceReporting:
    def test_divergence_reports_final_residual_on_handle(self, ref, rng):
        from repro.ginkgo.solver import Cg
        from repro.ginkgo.stop import Divergence

        # An indefinite system makes CG's residual grow immediately.
        n = 40
        diag = np.where(np.arange(n) % 2 == 0, 1.0, -1.0)
        mat = sp.diags(diag).tocsr()
        mtx = Csr.from_scipy(ref, mat)
        b = rng.standard_normal((n, 1))
        solver = Cg(
            ref, criteria=Iteration(100) | Divergence(limit=1.001)
        ).generate(mtx)
        x = Dense.zeros(ref, (n, 1), np.float64)
        solver.apply(Dense.create(ref, b), x)
        assert not solver.converged
        assert np.isfinite(solver.final_residual_norm)
        logger = ConvergenceLogger()
        solver.add_logger(logger)
        solver.apply(Dense.create(ref, b), Dense.zeros(ref, (n, 1), np.float64))
        assert solver.final_residual_norm == logger.residual_norms[-1]
