"""Thread-safety regression tests for the shared-worker-pool paths.

The service layer may drive solves from real worker threads
(``SolverService(real_pool=True)``).  Everything those threads share —
workspace pools, cachestats counters, the dispatch table, the device
cache, and a common metrics registry — must stay consistent under
concurrency, and solutions must remain byte-identical to their
single-threaded counterparts.
"""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import scipy.sparse as sp

import repro as pg
from repro.bindings import dispatch
from repro.core.resilient import FallbackChain, resilient_solve
from repro.ginkgo import cachestats
from repro.ginkgo.log.metrics import MetricsRegistry
from repro.ginkgo.matrix import Csr
from repro.ginkgo.matrix.dense import Dense
from repro.ginkgo.solver.workspace import Workspace


def _spd(n, shift=0.0):
    return sp.diags(
        [-np.ones(n - 1), (4.0 + shift) * np.ones(n), -np.ones(n - 1)],
        [-1, 0, 1],
        format="csr",
    )


def _solve(shift, metrics=None):
    """One scalar CG solve on its own fresh device."""
    dev = pg.device("reference", fresh=True)
    n = 32
    mtx = Csr.from_scipy(dev, _spd(n, shift))
    b = Dense.create(dev, np.linspace(1.0, 2.0, n).reshape(-1, 1))
    _, x = resilient_solve(
        dev, mtx, b, solver="cg", max_iters=200, reduction_factor=1e-9,
        fallback=FallbackChain(dev), metrics=metrics,
    )
    return np.array(pg.to_numpy(x), copy=True)


class TestConcurrentSolves:
    def test_threaded_solves_match_serial(self):
        shifts = [0.25 * i for i in range(12)]
        serial = [_solve(s) for s in shifts]
        metrics = MetricsRegistry()
        with ThreadPoolExecutor(max_workers=4) as pool:
            threaded = list(
                pool.map(lambda s: _solve(s, metrics=metrics), shifts)
            )
        for a, b in zip(serial, threaded):
            np.testing.assert_array_equal(a, b)
        # The shared registry saw every solve exactly once.
        assert metrics.counter("solves").value == len(shifts)
        assert metrics.counter("solves_converged").value == len(shifts)

    def test_workspace_pool_consistent_under_contention(self, ref):
        ws = Workspace(ref)
        num_threads, rounds = 8, 50

        def worker(tid):
            buffers = []
            for r in range(rounds):
                buf = ws.dense(f"slot{tid}", (16, 1), np.float64, zero=True)
                assert not np.any(buf._data)  # zeroed on every acquisition
                buf._data.fill(tid + 1)
                buffers.append(buf)
            # Per-slot pooling: every acquisition of a slot returns the
            # same storage, and no other thread's fill leaked into it.
            assert all(b._data is buffers[0]._data for b in buffers)
            assert np.all(buffers[0]._data == tid + 1)
            return True

        cachestats.reset()
        with ThreadPoolExecutor(max_workers=num_threads) as pool:
            assert all(pool.map(worker, range(num_threads)))
        hits, misses = cachestats.counts("workspace")
        # One miss per slot, every other acquisition a hit — no double
        # misses from racing threads leaking buffers.
        assert misses == num_threads
        assert hits == num_threads * (rounds - 1)

    def test_dispatch_resolve_threaded(self, ref):
        dispatch.clear()

        def resolve_many(_):
            return [
                dispatch.resolve("csr", np.float64, np.int32)
                for _ in range(20)
            ]

        with ThreadPoolExecutor(max_workers=8) as pool:
            batches = list(pool.map(resolve_many, range(8)))
        kernels = {id(k) for batch in batches for k in batch}
        assert len(kernels) == 1  # every thread saw the same cached kernel

    def test_real_pool_service_matches_sequential(self, ref):
        def stream():
            return pg.service.synthetic_workload(
                ref, num_jobs=16, num_patterns=2, small_n=24,
                mean_interarrival=1e-7, seed=7,
            )

        kwargs = dict(num_workers=4, coalesce=True, max_lane=8)
        sequential = pg.service.SolverService(**kwargs).run(stream())
        threaded = pg.service.SolverService(
            real_pool=True, **kwargs
        ).run(stream())
        # Contract: byte-identical solutions and statuses; virtual
        # timings may differ in the last digits under true concurrency.
        assert [r.status for r in threaded] == [
            r.status for r in sequential
        ]
        for a, b in zip(sequential, threaded):
            np.testing.assert_array_equal(a.x, b.x)
