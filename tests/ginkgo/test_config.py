"""Config-solver tests: parsing, validation, end-to-end solving."""

import json

import numpy as np
import pytest

from repro.ginkgo.config import ConfigError, parse, parse_json, validate
from repro.ginkgo.config.parser import to_json
from repro.ginkgo.matrix import Csr, Dense
from repro.ginkgo.solver import Direct, Gmres
from repro.ginkgo.solver.cg import CgSolver

LISTING2 = {
    "type": "solver::Gmres",
    "krylov_dim": 30,
    "preconditioner": {
        "type": "preconditioner::Jacobi",
        "max_block_size": 1,
    },
    "criteria": [
        {"type": "stop::Iteration", "max_iters": 1000},
        {"type": "stop::ResidualNorm", "reduction_factor": 1e-6},
    ],
}


class TestValidate:
    def test_listing2_is_valid(self):
        validate(LISTING2)

    def test_missing_type(self):
        with pytest.raises(ConfigError, match="missing required key 'type'"):
            validate({"criteria": []})

    def test_unknown_solver(self):
        with pytest.raises(ConfigError, match="unknown solver type"):
            validate({"type": "solver::QMR"})

    def test_unknown_solver_parameter(self):
        with pytest.raises(ConfigError, match="unknown parameter"):
            validate({"type": "solver::Cg", "krylov_dim": 30})

    def test_unknown_preconditioner(self):
        with pytest.raises(ConfigError, match="preconditioner"):
            validate({"type": "solver::Cg",
                      "preconditioner": {"type": "preconditioner::AMG"}})

    def test_unknown_preconditioner_parameter(self):
        with pytest.raises(ConfigError, match="unknown parameter"):
            validate({
                "type": "solver::Cg",
                "preconditioner": {
                    "type": "preconditioner::Jacobi", "fill_in": 2,
                },
            })

    def test_criteria_must_be_list_or_dict(self):
        with pytest.raises(ConfigError, match="list"):
            validate({"type": "solver::Cg", "criteria": "10 iterations"})

    def test_unknown_criterion(self):
        with pytest.raises(ConfigError, match="criterion"):
            validate({"type": "solver::Cg",
                      "criteria": [{"type": "stop::Energy"}]})

    def test_criterion_parameter_checked(self):
        with pytest.raises(ConfigError, match=r"criteria\[0\]"):
            validate({
                "type": "solver::Cg",
                "criteria": [{"type": "stop::Iteration", "iters": 5}],
            })

    def test_error_reports_path(self):
        with pytest.raises(ConfigError) as err:
            validate({
                "type": "solver::Gmres",
                "criteria": [
                    {"type": "stop::Iteration", "max_iters": 10},
                    {"type": "stop::ResidualNorm", "factor": 1e-6},
                ],
            })
        assert "criteria[1]" in str(err.value)

    def test_bad_value_type(self):
        with pytest.raises(ConfigError, match="value type"):
            validate({"type": "solver::Cg", "value_type": "quad"})

    def test_aliases_accepted(self):
        validate({"type": "gmres", "krylov_dim": 10})
        validate({"type": "cg", "preconditioner": {"type": "jacobi"}})


class TestParse:
    def test_listing2_produces_gmres_factory(self, ref):
        factory = parse(ref, LISTING2)
        assert isinstance(factory, Gmres)
        assert factory.params["krylov_dim"] == 30

    def test_end_to_end_solve(self, ref, spd_small, rng):
        factory = parse(ref, LISTING2)
        mtx = Csr.from_scipy(ref, spd_small)
        solver = factory.generate(mtx)
        xstar = rng.standard_normal((spd_small.shape[0], 1))
        x = Dense.zeros(ref, (spd_small.shape[0], 1), np.float64)
        solver.apply(Dense(ref, spd_small @ xstar), x)
        assert solver.converged
        np.testing.assert_allclose(np.asarray(x), xstar, atol=1e-4)

    def test_alias_type(self, ref):
        factory = parse(ref, {"type": "cg"})
        assert isinstance(factory.generate.__self__, type(factory))
        assert factory.solver_class is CgSolver

    def test_direct_solver_config(self, ref, general_small, rng):
        factory = parse(ref, {"type": "solver::Direct"})
        assert isinstance(factory, Direct)
        solver = factory.generate(Csr.from_scipy(ref, general_small))
        xstar = rng.standard_normal((general_small.shape[0], 1))
        x = Dense.zeros(ref, (general_small.shape[0], 1), np.float64)
        solver.apply(Dense(ref, general_small @ xstar), x)
        np.testing.assert_allclose(np.asarray(x), xstar, atol=1e-9)

    def test_single_criterion_dict(self, ref):
        factory = parse(
            ref,
            {"type": "cg", "criteria": {"type": "stop::Iteration",
                                        "max_iters": 7}},
        )
        assert factory.criteria.max_iters == 7

    def test_invalid_config_raises_before_building(self, ref):
        with pytest.raises(ConfigError):
            parse(ref, {"type": "cg", "bogus": True})


class TestJson:
    def test_parse_json_roundtrip(self, ref):
        factory = parse_json(ref, json.dumps(LISTING2))
        assert isinstance(factory, Gmres)

    def test_parse_json_invalid(self, ref):
        with pytest.raises(ConfigError, match="invalid JSON"):
            parse_json(ref, "{not json")

    def test_to_json_validates(self):
        text = to_json(LISTING2)
        assert json.loads(text)["type"] == "solver::Gmres"
        with pytest.raises(ConfigError):
            to_json({"type": "solver::Nope"})
