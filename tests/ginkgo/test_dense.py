"""Dense matrix/vector tests."""

import numpy as np
import pytest

from repro.ginkgo import DimensionMismatch, ExecutorMismatch
from repro.ginkgo.matrix import Dense


class TestConstruction:
    def test_1d_becomes_column(self, ref):
        d = Dense(ref, np.arange(5.0))
        assert d.shape == (5, 1)

    def test_zeros_full_empty(self, ref):
        z = Dense.zeros(ref, (3, 2), np.float64)
        assert not np.asarray(z).any()
        f = Dense.full(ref, (2, 2), 7.0, np.float32)
        assert np.asarray(f).min() == 7.0
        e = Dense.empty(ref, (4, 1), np.float64)
        assert e.shape == (4, 1)

    def test_3d_rejected(self, ref):
        with pytest.raises(Exception):
            Dense(ref, np.zeros((2, 2, 2)))

    def test_construction_copies_input(self, ref):
        src = np.ones((2, 2))
        d = Dense(ref, src)
        src[0, 0] = 5
        assert np.asarray(d)[0, 0] == 1


class TestBlas1:
    def test_fill(self, ref):
        d = Dense.zeros(ref, (3, 1), np.float64).fill(2.5)
        np.testing.assert_array_equal(np.asarray(d), 2.5)

    def test_scale_scalar(self, ref):
        d = Dense(ref, np.arange(4.0)).scale(2.0)
        np.testing.assert_array_equal(np.asarray(d).ravel(), [0, 2, 4, 6])

    def test_scale_per_column(self, ref):
        d = Dense(ref, np.ones((2, 3)))
        d.scale(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_array_equal(np.asarray(d), [[1, 2, 3], [1, 2, 3]])

    def test_inv_scale(self, ref):
        d = Dense(ref, np.full((3, 1), 6.0)).inv_scale(2.0)
        np.testing.assert_array_equal(np.asarray(d), 3.0)

    def test_inv_scale_zero_raises(self, ref):
        with pytest.raises(ZeroDivisionError):
            Dense(ref, np.ones((2, 1))).inv_scale(0.0)

    def test_add_scaled(self, ref):
        x = Dense(ref, np.ones((3, 1)))
        y = Dense(ref, np.full((3, 1), 2.0))
        x.add_scaled(3.0, y)
        np.testing.assert_array_equal(np.asarray(x), 7.0)

    def test_sub_scaled(self, ref):
        x = Dense(ref, np.full((3, 1), 10.0))
        y = Dense(ref, np.ones((3, 1)))
        x.sub_scaled(4.0, y)
        np.testing.assert_array_equal(np.asarray(x), 6.0)

    def test_add_scaled_shape_mismatch(self, ref):
        x = Dense(ref, np.ones((3, 1)))
        y = Dense(ref, np.ones((4, 1)))
        with pytest.raises(DimensionMismatch):
            x.add_scaled(1.0, y)

    def test_add_scaled_executor_mismatch(self, ref, cuda):
        x = Dense(ref, np.ones((3, 1)))
        y = Dense(cuda, np.ones((3, 1)))
        with pytest.raises(ExecutorMismatch):
            x.add_scaled(1.0, y)

    def test_scalar_as_1x1_dense(self, ref):
        alpha = Dense(ref, np.array([[2.0]]))
        x = Dense(ref, np.ones((3, 1)))
        x.scale(alpha)
        np.testing.assert_array_equal(np.asarray(x), 2.0)

    def test_copy_values_from(self, ref):
        x = Dense.zeros(ref, (3, 1), np.float64)
        y = Dense(ref, np.arange(3.0))
        x.copy_values_from(y)
        np.testing.assert_array_equal(np.asarray(x), np.asarray(y))


class TestReductions:
    def test_compute_dot(self, ref):
        x = Dense(ref, np.array([[1.0], [2.0], [3.0]]))
        y = Dense(ref, np.array([[4.0], [5.0], [6.0]]))
        assert x.compute_dot(y)[0] == pytest.approx(32.0)

    def test_compute_dot_per_column(self, ref):
        x = Dense(ref, np.array([[1.0, 2.0], [3.0, 4.0]]))
        result = x.compute_dot(x)
        np.testing.assert_allclose(result, [10.0, 20.0])

    def test_compute_norm2(self, ref):
        x = Dense(ref, np.array([[3.0], [4.0]]))
        assert x.compute_norm2()[0] == pytest.approx(5.0)

    def test_compute_norm1(self, ref):
        x = Dense(ref, np.array([[-3.0], [4.0]]))
        assert x.compute_norm1()[0] == pytest.approx(7.0)

    def test_reductions_charge_the_clock(self, ref):
        x = Dense(ref, np.ones((1000, 1)))
        before = ref.clock.now
        x.compute_norm2()
        assert ref.clock.now > before


class TestStructure:
    def test_transpose(self, ref):
        d = Dense(ref, np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]]))
        t = d.transpose()
        assert t.shape == (2, 3)
        np.testing.assert_array_equal(np.asarray(t), np.asarray(d).T)

    def test_column(self, ref):
        d = Dense(ref, np.array([[1.0, 2.0], [3.0, 4.0]]))
        np.testing.assert_array_equal(
            np.asarray(d.column(1)).ravel(), [2.0, 4.0]
        )
        with pytest.raises(IndexError):
            d.column(5)

    def test_row_slice(self, ref):
        d = Dense(ref, np.arange(12.0).reshape(4, 3))
        s = d.row_slice(1, 3)
        np.testing.assert_array_equal(np.asarray(s), np.arange(12.0).reshape(4, 3)[1:3])
        with pytest.raises(IndexError):
            d.row_slice(3, 10)

    def test_astype(self, ref):
        d = Dense(ref, np.arange(3.0)).astype(np.float32)
        assert d.dtype == np.float32

    def test_at_reads_entries(self, ref):
        d = Dense(ref, np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert d.at(1, 1) == 4.0

    def test_at_on_device_synchronises(self, cuda):
        d = Dense(cuda, np.array([[1.0]]))
        before = cuda.clock.now
        assert d.at(0, 0) == 1.0
        assert cuda.clock.now > before


class TestApply:
    def test_dense_matvec(self, ref, rng):
        a = rng.standard_normal((6, 4))
        b = rng.standard_normal((4, 2))
        op = Dense(ref, a)
        x = Dense.zeros(ref, (6, 2), np.float64)
        op.apply(Dense(ref, b), x)
        np.testing.assert_allclose(np.asarray(x), a @ b)

    def test_advanced_apply(self, ref, rng):
        a = rng.standard_normal((4, 4))
        b = rng.standard_normal((4, 1))
        x0 = rng.standard_normal((4, 1))
        op = Dense(ref, a)
        x = Dense(ref, x0)
        op.apply_advanced(2.0, Dense(ref, b), 0.5, x)
        np.testing.assert_allclose(np.asarray(x), 2.0 * (a @ b) + 0.5 * x0)

    def test_apply_validates_dims(self, ref):
        op = Dense(ref, np.ones((3, 4)))
        bad_b = Dense.zeros(ref, (3, 1), np.float64)
        x = Dense.zeros(ref, (3, 1), np.float64)
        with pytest.raises(DimensionMismatch):
            op.apply(bad_b, x)


class TestDeviceSemantics:
    def test_view_blocked_on_device(self, cuda):
        d = Dense(cuda, np.ones((2, 2)))
        with pytest.raises(ExecutorMismatch):
            d.view()

    def test_to_numpy_from_device(self, cuda):
        d = Dense(cuda, np.arange(4.0).reshape(2, 2))
        np.testing.assert_array_equal(d.to_numpy(), np.arange(4.0).reshape(2, 2))

    def test_copy_to(self, ref, cuda):
        d = Dense(ref, np.arange(4.0).reshape(2, 2))
        on_gpu = d.copy_to(cuda)
        assert on_gpu.executor is cuda
        np.testing.assert_array_equal(on_gpu.to_numpy(), np.asarray(d))
