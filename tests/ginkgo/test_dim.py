"""Dim tests."""

import pytest

from repro.ginkgo import BadDimension, Dim


class TestDim:
    def test_square_shorthand(self):
        assert Dim(5) == Dim(5, 5)

    def test_indexing_and_iteration(self):
        d = Dim(3, 7)
        assert d[0] == 3
        assert d[1] == 7
        assert tuple(d) == (3, 7)
        assert len(d) == 2
        with pytest.raises(IndexError):
            d[2]

    def test_equality_with_tuples(self):
        assert Dim(3, 7) == (3, 7)
        assert Dim(3, 7) != (7, 3)

    def test_hashable(self):
        assert len({Dim(2, 3), Dim(2, 3), Dim(3, 2)}) == 2

    def test_truthiness(self):
        assert Dim(1, 1)
        assert not Dim(0, 5)
        assert not Dim(5, 0)

    def test_negative_rejected(self):
        with pytest.raises(BadDimension):
            Dim(-1, 2)

    def test_composition(self):
        assert Dim(3, 4) * Dim(4, 5) == Dim(3, 5)

    def test_composition_mismatch(self):
        with pytest.raises(BadDimension):
            Dim(3, 4) * Dim(5, 6)

    def test_transposed(self):
        assert Dim(3, 4).transposed == Dim(4, 3)

    def test_is_square(self):
        assert Dim(4).is_square
        assert not Dim(3, 4).is_square

    def test_num_elements(self):
        assert Dim(3, 4).num_elements == 12

    def test_of_coercion(self):
        assert Dim.of(5) == Dim(5, 5)
        assert Dim.of((2, 3)) == Dim(2, 3)
        assert Dim.of([2, 3]) == Dim(2, 3)
        d = Dim(2, 3)
        assert Dim.of(d) is d
        with pytest.raises(BadDimension):
            Dim.of("bad")
