"""Distributed subsystem: partitions, halo exchange, bit-identical solves."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

import repro as pg
from repro.ginkgo.distributed import (
    Communicator,
    DistributedCg,
    DistributedGmres,
    DistributedPipelinedCg,
    DistributedSStepGmres,
    Matrix,
    Partition,
    Vector,
)
from repro.ginkgo.exceptions import BadDimension, GinkgoError
from repro.ginkgo.executor import OmpExecutor, ReferenceExecutor
from repro.ginkgo.log import ConvergenceLogger
from repro.ginkgo.matrix import Csr, Dense
from repro.ginkgo.solver import Cg, Gmres
from repro.ginkgo.stop import Iteration, ResidualNorm
from repro.perfmodel import allreduce_time, halo_exchange_time
from repro.perfmodel.comm import ETHERNET_CLUSTER, INTRA_NODE


def spd_matrix(rng, n=200, density=0.03):
    mat = sp.random(n, n, density=density, random_state=rng, format="csr")
    mat = mat + mat.T
    shift = np.abs(mat).sum(axis=1).max() + 1.0
    return sp.csr_matrix(mat + sp.eye(n) * shift)


def crit():
    return Iteration(300) | ResidualNorm(1e-10, baseline="rhs_norm")


# ----------------------------------------------------------------------
# Partition
# ----------------------------------------------------------------------
class TestPartition:
    def test_uniform_tiles_all_rows(self):
        part = Partition.build_uniform(10, 4)
        assert part.global_size == 10
        assert part.num_ranks == 4
        assert part.sizes == (3, 3, 2, 2)
        assert list(part) == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_weighted_balances_cumulative_weight(self):
        # All the weight in the first rows: rank 0 gets few rows.
        weights = np.r_[np.full(10, 100.0), np.full(90, 1.0)]
        part = Partition.build_from_weights(weights, 4)
        assert part.global_size == 100
        assert part.num_ranks == 4
        assert part.sizes[0] < 25

    def test_owner_of_scalar_and_array(self):
        part = Partition(6, [(0, 2), (2, 2), (2, 6)])  # rank 1 empty
        assert part.owner_of(0) == 0
        assert part.owner_of(2) == 2  # tie at offset 2 -> owning rank
        assert part.owner_of(5) == 2
        np.testing.assert_array_equal(
            part.owner_of(np.array([0, 1, 2, 5])), [0, 0, 2, 2]
        )
        with pytest.raises(IndexError):
            part.owner_of(6)

    def test_rejects_gaps_and_overlaps(self):
        with pytest.raises(GinkgoError):
            Partition(10, [(0, 4), (5, 10)])  # gap
        with pytest.raises(GinkgoError):
            Partition(10, [(0, 6), (4, 10)])  # overlap
        with pytest.raises(GinkgoError):
            Partition(10, [(0, 4)])  # short
        with pytest.raises(BadDimension):
            Partition(-1, [(0, 0)])

    def test_equality_and_hash(self):
        a = Partition.build_uniform(10, 2)
        b = Partition(10, [(0, 5), (5, 10)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != Partition.build_uniform(10, 5)


# ----------------------------------------------------------------------
# Communicator and network model
# ----------------------------------------------------------------------
class TestCommunicator:
    def test_all_reduce_advances_clock_and_counts(self, ref):
        comm = Communicator(ref, 4)
        before = ref.clock.now
        seconds = comm.all_reduce(64)
        assert ref.clock.now == pytest.approx(before + seconds)
        assert seconds == pytest.approx(allreduce_time(64, 4, INTRA_NODE))
        assert comm.num_all_reduces == 1
        assert comm.bytes_all_reduced == 64

    def test_halo_exchange_charges_messages(self, ref):
        comm = Communicator(ref, 4)
        seconds = comm.halo_exchange(1024, 6)
        assert seconds == pytest.approx(
            halo_exchange_time(1024, 6, INTRA_NODE)
        )
        assert comm.num_halo_exchanges == 1
        assert comm.bytes_halo_exchanged == 1024

    def test_single_rank_is_free(self, ref):
        comm = Communicator(ref, 1)
        before = ref.clock.now
        assert comm.all_reduce(1 << 20) == 0.0
        assert comm.halo_exchange(1 << 20, 8) == 0.0
        assert ref.clock.now == before
        assert comm.num_all_reduces == 0
        assert comm.num_halo_exchanges == 0

    def test_allreduce_scales_with_log_ranks(self):
        t2 = allreduce_time(1024, 2, INTRA_NODE)
        t8 = allreduce_time(1024, 8, INTRA_NODE)
        assert t8 == pytest.approx(3.0 * t2)
        assert allreduce_time(1024, 1, INTRA_NODE) == 0.0


# ----------------------------------------------------------------------
# Vector
# ----------------------------------------------------------------------
class TestVector:
    def test_local_views_alias_global_arena(self, ref, rng):
        part = Partition.build_uniform(10, 3)
        data = rng.standard_normal(10)
        vec = Vector(ref, part, data)
        lo, hi = part.range_of(1)
        local = vec.local(1)
        np.testing.assert_array_equal(local._data[:, 0], data[lo:hi])
        local._data[0, 0] = 42.0
        assert vec.view()[lo, 0] == 42.0

    def test_reductions_match_dense_bitwise(self, ref, rng):
        part = Partition.build_uniform(64, 4)
        a = rng.standard_normal(64)
        b = rng.standard_normal(64)
        va, vb = Vector(ref, part, a), Vector(ref, part, b)
        da, db = Dense(ref, a), Dense(ref, b)
        assert va.compute_dot(vb).tobytes() == da.compute_dot(db).tobytes()
        assert va.compute_norm2().tobytes() == da.compute_norm2().tobytes()

    def test_reductions_charge_all_reduce(self, ref, rng):
        part = Partition.build_uniform(16, 4)
        vec = Vector(ref, part, rng.standard_normal(16))
        assert vec.comm.num_all_reduces == 0
        vec.compute_norm2()
        vec.compute_dot(Vector(ref, part, np.ones(16), comm=vec.comm))
        assert vec.comm.num_all_reduces == 2

    def test_elementwise_ops(self, omp, rng):
        part = Partition.build_uniform(40, 4)
        a = rng.standard_normal(40)
        vec = Vector(omp, part, a)
        other = Vector(omp, part, np.ones(40))
        vec.scale(2.0)
        np.testing.assert_allclose(vec.view()[:, 0], 2.0 * a)
        vec.add_scaled(-1.0, other)
        np.testing.assert_allclose(vec.view()[:, 0], 2.0 * a - 1.0)
        vec.copy_values_from(other)
        np.testing.assert_array_equal(vec.view(), other.view())
        vec.fill(7.0)
        assert (vec.view() == 7.0).all()

    def test_incompatible_operands_rejected(self, ref, rng):
        part = Partition.build_uniform(12, 3)
        vec = Vector(ref, part, rng.standard_normal(12))
        with pytest.raises(GinkgoError):
            vec.compute_dot(Dense(ref, np.ones(12)))
        other = Vector(ref, Partition.build_uniform(12, 2), np.ones(12))
        with pytest.raises(GinkgoError):
            vec.compute_dot(other)
        with pytest.raises(BadDimension):
            Vector(ref, part, np.ones(11))


# ----------------------------------------------------------------------
# Matrix and RowGatherer
# ----------------------------------------------------------------------
class TestMatrix:
    def test_blocks_reassemble_global_operator(self, ref, rng):
        mat = spd_matrix(rng, n=80)
        part = Partition.build_uniform(80, 4)
        dist = Matrix(ref, part, mat)
        assert (dist.to_scipy() != mat).nnz == 0
        # local + scattered non-local == full row slice, per rank.
        for rank, (lo, hi) in enumerate(part.ranges):
            ghosts = dist.ghost_columns(rank)
            rebuilt = np.zeros((hi - lo, 80))
            rebuilt[:, lo:hi] = dist.local_block(rank).toarray()
            if ghosts.size:
                rebuilt[:, ghosts] += dist.non_local_block(rank).toarray()
            np.testing.assert_array_equal(
                rebuilt, mat[lo:hi, :].toarray()
            )

    def test_ghost_columns_exclude_own_range(self, ref, rng):
        mat = spd_matrix(rng, n=60)
        part = Partition.build_uniform(60, 3)
        dist = Matrix(ref, part, mat)
        for rank, (lo, hi) in enumerate(part.ranges):
            ghosts = dist.ghost_columns(rank)
            assert not ((ghosts >= lo) & (ghosts < hi)).any()

    def test_spmv_matches_scalar_csr_bitwise(self, omp, rng):
        mat = spd_matrix(rng, n=150)
        b = rng.standard_normal(150)
        scalar_exec = ReferenceExecutor.create(noisy=False)
        scalar = Csr.from_scipy(scalar_exec, mat)
        expected = Dense(scalar_exec, np.zeros((150, 1)))
        scalar.apply(Dense(scalar_exec, b), expected)

        part = Partition.build_uniform(150, 4)
        dist = Matrix(omp, part, mat)
        db = Vector(omp, part, b, comm=dist.comm)
        dx = Vector.zeros(omp, part, comm=dist.comm)
        dist.apply(db, dx)
        assert dx.to_numpy().tobytes() == expected._data.tobytes()

    def test_apply_charges_halo_exchange(self, ref, rng):
        mat = spd_matrix(rng, n=60)
        part = Partition.build_uniform(60, 3)
        dist = Matrix(ref, part, mat)
        assert dist.row_gatherer.total_recv_size > 0
        b = Vector(ref, part, rng.standard_normal(60), comm=dist.comm)
        x = Vector.zeros(ref, part, comm=dist.comm)
        dist.apply(b, x)
        assert dist.comm.num_halo_exchanges == 1
        assert (
            dist.comm.bytes_halo_exchanged
            == dist.row_gatherer.total_recv_size * 8
        )

    def test_single_rank_has_no_ghosts(self, ref, rng):
        mat = spd_matrix(rng, n=40)
        dist = Matrix(ref, Partition.build_uniform(40, 1), mat)
        assert dist.row_gatherer.total_recv_size == 0
        b = Vector(ref, dist.partition, np.ones(40), comm=dist.comm)
        x = Vector.zeros(ref, dist.partition, comm=dist.comm)
        dist.apply(b, x)
        assert dist.comm.num_halo_exchanges == 0

    def test_rejects_bad_shapes(self, ref, rng):
        with pytest.raises(BadDimension):
            Matrix(ref, Partition.build_uniform(5, 2), sp.eye(6).tocsr())
        with pytest.raises(BadDimension):
            Matrix(
                ref,
                Partition.build_uniform(6, 2),
                sp.random(6, 5, density=0.5, random_state=rng),
            )

    def test_rejects_dense_operands(self, ref, rng):
        mat = spd_matrix(rng, n=20)
        dist = Matrix(ref, Partition.build_uniform(20, 2), mat)
        part = dist.partition
        b = Vector(ref, part, np.ones(20))
        with pytest.raises(GinkgoError):
            dist.apply(Dense(ref, np.ones(20)), Vector.zeros(ref, part))
        with pytest.raises(GinkgoError):
            dist.apply(b, Dense(ref, np.ones(20)))


# ----------------------------------------------------------------------
# Overlapped SpMV: halo exchange hidden behind the local block
# ----------------------------------------------------------------------
class TestOverlapSpmv:
    def test_overlap_matches_blocking_to_rounding(self, omp, rng):
        mat = spd_matrix(rng, n=150)
        b = rng.standard_normal(150)
        part = Partition.build_uniform(150, 4)
        blocking = Matrix(omp, part, mat)
        db = Vector(omp, part, b, comm=blocking.comm)
        dx = Vector.zeros(omp, part, comm=blocking.comm)
        blocking.apply(db, dx)
        expected = dx.to_numpy()

        over = Matrix(omp, part, mat, overlap=True)
        ob = Vector(omp, part, b, comm=over.comm)
        ox = Vector.zeros(omp, part, comm=over.comm)
        over.apply(ob, ox)
        np.testing.assert_allclose(
            ox.to_numpy(), expected, rtol=1e-13, atol=1e-13
        )

    def test_overlap_advanced_apply(self, omp, rng):
        mat = spd_matrix(rng, n=120)
        part = Partition.build_uniform(120, 4)
        over = Matrix(omp, part, mat, overlap=True)
        b = Vector(omp, part, rng.standard_normal(120), comm=over.comm)
        x = Vector(omp, part, rng.standard_normal(120), comm=over.comm)
        reference = 2.0 * (mat @ b.to_numpy()) - 3.0 * x.to_numpy()
        over.apply_advanced(2.0, b, -3.0, x)
        np.testing.assert_allclose(
            x.to_numpy(), reference, rtol=1e-12, atol=1e-12
        )

    def test_overlap_hides_halo_time(self, omp, rng):
        mat = spd_matrix(rng, n=150)
        part = Partition.build_uniform(150, 4)
        over = Matrix(
            omp, part, mat, overlap=True, network=ETHERNET_CLUSTER
        )
        b = Vector(omp, part, rng.standard_normal(150), comm=over.comm)
        x = Vector.zeros(omp, part, comm=over.comm)
        over.apply(b, x)
        assert over.comm.num_halo_exchanges == 1
        assert over.comm.comm_hidden_seconds > 0.0
        # Total modeled comm equals the blocking charge: overlap moves
        # time off the critical path, it does not delete it.
        assert over.comm.comm_seconds == pytest.approx(
            halo_exchange_time(
                over.comm.bytes_halo_exchanged,
                over.row_gatherer.num_messages,
                ETHERNET_CLUSTER,
            )
        )

    def test_comm_hidden_annotation_traced(self, rng):
        mat = spd_matrix(rng, n=90)
        dev = pg.device("omp", fresh=True, num_threads=2)
        part = pg.distributed.partition(90, 3)
        dist = pg.distributed.matrix(
            dev, part, mat, overlap=True, network=ETHERNET_CLUSTER
        )
        b = pg.distributed.vector(
            dev, part, rng.standard_normal(90), comm=dist.comm
        )
        x = pg.distributed.zeros_like(b)
        with pg.profile(dev) as prof:
            dist.apply(b, x)
        assert any(
            s.name == "comm_hidden" for s in prof.trace.walk()
        )

    def test_single_rank_overlap_is_free(self, ref, rng):
        mat = spd_matrix(rng, n=40)
        dist = Matrix(
            ref, Partition.build_uniform(40, 1), mat, overlap=True
        )
        b = Vector(ref, dist.partition, np.ones(40), comm=dist.comm)
        x = Vector.zeros(ref, dist.partition, comm=dist.comm)
        before = ref.clock.now
        dist.apply(b, x)
        assert dist.comm.num_halo_exchanges == 0
        assert dist.comm.comm_seconds == 0.0
        # Only compute advanced the clock; no comm category charged.
        assert ref.clock.now > before

    def test_overlap_toggle(self, ref, rng):
        mat = spd_matrix(rng, n=40)
        dist = Matrix(ref, Partition.build_uniform(40, 2), mat)
        assert not dist.overlap
        dist.overlap = True
        assert dist.overlap


# ----------------------------------------------------------------------
# Solvers: the bit-identity guarantee
# ----------------------------------------------------------------------
def scalar_history(mat, b, factory_cls, **params):
    ex = ReferenceExecutor.create(noisy=False)
    solver = factory_cls(ex, criteria=crit(), **params).generate(
        Csr.from_scipy(ex, mat)
    )
    logger = ConvergenceLogger()
    solver.add_logger(logger)
    x = Dense(ex, np.zeros((mat.shape[0], 1)))
    solver.apply(Dense(ex, b), x)
    return solver, list(logger.residual_norms), x._data.copy()


def distributed_history(mat, b, factory_cls, num_ranks, exec_=None, **params):
    ex = exec_ or OmpExecutor.create(num_threads=4, noisy=False)
    part = Partition.build_uniform(mat.shape[0], num_ranks)
    dist = Matrix(ex, part, mat)
    db = Vector(ex, part, b, comm=dist.comm)
    dx = Vector.zeros(ex, part, comm=dist.comm)
    solver = factory_cls(ex, criteria=crit(), **params).generate(dist)
    logger = ConvergenceLogger()
    solver.add_logger(logger)
    solver.apply(db, dx)
    return solver, list(logger.residual_norms), dx.to_numpy(), dist


@pytest.mark.parametrize(
    "scalar_cls,dist_cls,params",
    [
        (Cg, DistributedCg, {}),
        (Gmres, DistributedGmres, {"krylov_dim": 25}),
    ],
    ids=["cg", "gmres"],
)
class TestBitIdentity:
    def test_four_ranks_match_scalar_bitwise(
        self, rng, scalar_cls, dist_cls, params
    ):
        mat = spd_matrix(rng)
        b = rng.standard_normal(mat.shape[0])
        s, hist, x = scalar_history(mat, b, scalar_cls, **params)
        d, dhist, dx, dist = distributed_history(
            mat, b, dist_cls, num_ranks=4, **params
        )
        assert s.converged and d.converged
        assert d.num_iterations == s.num_iterations
        assert len(dhist) == len(hist)
        assert (
            np.asarray(dhist, dtype=np.float64).tobytes()
            == np.asarray(hist, dtype=np.float64).tobytes()
        )
        assert dx.tobytes() == x.tobytes()

    def test_single_rank_matches_multi_rank(
        self, rng, scalar_cls, dist_cls, params
    ):
        mat = spd_matrix(rng)
        b = rng.standard_normal(mat.shape[0])
        ref_exec = ReferenceExecutor.create(noisy=False)
        _, h1, x1, dist1 = distributed_history(
            mat, b, dist_cls, num_ranks=1, exec_=ref_exec, **params
        )
        _, h4, x4, _ = distributed_history(
            mat, b, dist_cls, num_ranks=4, **params
        )
        assert (
            np.asarray(h1, dtype=np.float64).tobytes()
            == np.asarray(h4, dtype=np.float64).tobytes()
        )
        assert x1.tobytes() == x4.tobytes()
        # A single rank never communicates.
        assert dist1.comm.num_all_reduces == 0
        assert dist1.comm.num_halo_exchanges == 0


class TestDistributedSolvers:
    def test_cg_charges_reductions_and_halos(self, rng):
        mat = spd_matrix(rng)
        b = rng.standard_normal(mat.shape[0])
        solver, hist, _, dist = distributed_history(
            mat, b, DistributedCg, num_ranks=4
        )
        iters = solver.num_iterations
        # Per iteration: dot(p,q), norm(r), dot(r,z) + setup reductions.
        assert dist.comm.num_all_reduces >= 3 * iters
        # One halo exchange per SpMV (setup residual + one per iteration).
        assert dist.comm.num_halo_exchanges == iters + 1

    def test_omp_uses_thread_pool(self, rng):
        mat = spd_matrix(rng)
        b = rng.standard_normal(mat.shape[0])
        ex = OmpExecutor.create(num_threads=4, noisy=False)
        before = ex.pool_regions
        distributed_history(mat, b, DistributedCg, num_ranks=4, exec_=ex)
        assert ex.pool_regions > before

    def test_preconditioner_rejected(self, ref, rng):
        mat = spd_matrix(rng, n=40)
        dist = Matrix(ref, Partition.build_uniform(40, 2), mat)
        from repro.ginkgo.preconditioner import Jacobi

        factory = DistributedCg(
            ref, criteria=crit(), preconditioner=Jacobi(ref)
        )
        with pytest.raises(GinkgoError):
            factory.generate(dist)

    def test_requires_distributed_matrix(self, ref, rng):
        mat = spd_matrix(rng, n=40)
        scalar = Csr.from_scipy(ref, mat)
        with pytest.raises(GinkgoError):
            DistributedCg(ref, criteria=crit()).generate(scalar)

    def test_gmres_single_rhs_only(self, ref, rng):
        mat = spd_matrix(rng, n=30)
        dist = Matrix(ref, Partition.build_uniform(30, 2), mat)
        b = Vector(ref, dist.partition, rng.standard_normal((30, 2)))
        x = Vector.zeros(ref, dist.partition, cols=2)
        solver = DistributedGmres(ref, criteria=crit()).generate(dist)
        with pytest.raises(GinkgoError):
            solver.apply(b, x)

    def test_comm_spans_show_up_in_profile(self, rng):
        mat = spd_matrix(rng, n=60)
        b = rng.standard_normal(60)
        dev = pg.device("omp", fresh=True, num_threads=2)
        part = pg.distributed.partition(60, 3)
        dist = pg.distributed.matrix(dev, part, mat)
        db = pg.distributed.vector(dev, part, b, comm=dist.comm)
        dx = pg.distributed.zeros_like(db)
        with pg.profile(dev) as prof:
            handle = pg.distributed.cg(dev, dist, reduction_factor=1e-8)
            handle.apply(db, dx)
        names = set()
        comm_seconds = 0.0
        for span in prof.trace.walk():
            if span.category == "comm":
                names.add(span.name)
                comm_seconds += span.duration
        assert "all_reduce_dot" in names
        assert "halo_exchange" in names
        assert comm_seconds > 0.0


# ----------------------------------------------------------------------
# Communication-hiding solvers: pipelined CG and s-step GMRES
# ----------------------------------------------------------------------
#: The pinned relaxed-contract tolerance (DESIGN.md): pipelined and
#: s-step residual histories track their blocking counterparts to this
#: relative accuracy over the shared iteration prefix.
PIPELINED_HISTORY_RTOL = 1e-6
SSTEP_HISTORY_RTOL = 1e-2


class TestPipelinedCg:
    def test_converges_with_one_reduction_per_iteration(self, rng):
        mat = spd_matrix(rng)
        b = rng.standard_normal(mat.shape[0])
        blocking, bhist, bx, bdist = distributed_history(
            mat, b, DistributedCg, num_ranks=4
        )
        pipelined, phist, px, pdist = distributed_history(
            mat, b, DistributedPipelinedCg, num_ranks=4
        )
        assert blocking.converged and pipelined.converged
        # One fused reduction per pass vs >= 3 for blocking CG.
        assert (
            pdist.comm.num_all_reduces
            < bdist.comm.num_all_reduces / 2
        )
        # Pipeline depth 1: at most a couple of extra passes.
        assert (
            abs(pipelined.num_iterations - blocking.num_iterations) <= 2
        )
        # Tolerance-pinned relaxed contract over the shared prefix.
        m = min(len(phist), len(bhist))
        np.testing.assert_allclose(
            phist[:m], bhist[:m], rtol=PIPELINED_HISTORY_RTOL
        )
        # Both solutions actually solve the system.
        for sol in (bx, px):
            res = np.linalg.norm(mat @ sol[:, 0] - b)
            assert res / np.linalg.norm(b) < 1e-8

    def test_reduction_is_overlapped(self, rng):
        mat = spd_matrix(rng)
        b = rng.standard_normal(mat.shape[0])
        ex = OmpExecutor.create(num_threads=4, noisy=False)
        part = Partition.build_uniform(mat.shape[0], 4)
        dist = Matrix(ex, part, mat, network=ETHERNET_CLUSTER)
        db = Vector(ex, part, b, comm=dist.comm)
        dx = Vector.zeros(ex, part, comm=dist.comm)
        solver = DistributedPipelinedCg(ex, criteria=crit()).generate(dist)
        solver.apply(db, dx)
        assert solver.converged
        assert dist.comm.comm_hidden_seconds > 0.0
        assert dist.comm.num_posted == solver.num_iterations + 1

    def test_deterministic_across_runs(self, rng):
        mat = spd_matrix(rng)
        b = np.random.default_rng(7).standard_normal(mat.shape[0])
        runs = [
            distributed_history(
                mat, b, DistributedPipelinedCg, num_ranks=4
            )[1:3]
            for _ in range(2)
        ]
        assert np.asarray(runs[0][0]).tobytes() == np.asarray(
            runs[1][0]
        ).tobytes()
        assert runs[0][1].tobytes() == runs[1][1].tobytes()


class TestSStepGmres:
    def test_converges_with_one_reduction_per_cycle(self, rng):
        mat = spd_matrix(rng)
        b = rng.standard_normal(mat.shape[0])
        blocking, bhist, bx, bdist = distributed_history(
            mat, b, DistributedGmres, num_ranks=4, krylov_dim=25
        )
        sstep, shist, sx, sdist = distributed_history(
            mat, b, DistributedSStepGmres, num_ranks=4, s_step=4
        )
        assert blocking.converged and sstep.converged
        # One Gram reduction per s-iteration cycle (a stopped cycle
        # still pays its Gram), plus the setup norm and the cached
        # infinity-norm bound: far fewer than blocking GMRES's
        # per-iteration pair.
        cycles = -(-sstep.num_iterations // 4) + 1  # ceil, + partial
        assert sdist.comm.num_all_reduces <= cycles + 2
        assert sdist.comm.num_all_reduces < bdist.comm.num_all_reduces / 3
        res = np.linalg.norm(mat @ sx[:, 0] - b)
        assert res / np.linalg.norm(b) < 1e-8
        # The monitored estimates track the blocking history loosely
        # (monomial-basis reassociation): pinned, not bitwise.
        m = min(len(shist), len(bhist), 5)
        np.testing.assert_allclose(
            shist[:m], bhist[:m], rtol=SSTEP_HISTORY_RTOL
        )

    def test_infinity_norm_cached_single_reduction(self, ref, rng):
        mat = spd_matrix(rng, n=60)
        part = Partition.build_uniform(60, 3)
        dist = Matrix(ref, part, mat)
        expected = np.abs(mat).sum(axis=1).max()
        assert dist.infinity_norm() == pytest.approx(expected)
        before = dist.comm.num_all_reduces
        assert dist.infinity_norm() == pytest.approx(expected)
        assert dist.comm.num_all_reduces == before  # cached

    def test_validates_parameters(self, ref, rng):
        mat = spd_matrix(rng, n=30)
        dist = Matrix(ref, Partition.build_uniform(30, 2), mat)
        solver = DistributedSStepGmres(
            ref, criteria=crit(), s_step=0
        ).generate(dist)
        b = Vector(ref, dist.partition, rng.standard_normal(30))
        x = Vector.zeros(ref, dist.partition)
        with pytest.raises(GinkgoError):
            solver.apply(b, x)

    def test_single_rhs_only(self, ref, rng):
        mat = spd_matrix(rng, n=30)
        dist = Matrix(ref, Partition.build_uniform(30, 2), mat)
        b = Vector(ref, dist.partition, rng.standard_normal((30, 2)))
        x = Vector.zeros(ref, dist.partition, cols=2)
        solver = DistributedSStepGmres(ref, criteria=crit()).generate(dist)
        with pytest.raises(GinkgoError):
            solver.apply(b, x)


# ----------------------------------------------------------------------
# pg.distributed API
# ----------------------------------------------------------------------
class TestDistributedApi:
    def test_end_to_end_cg(self, rng):
        dev = pg.device("omp", fresh=True, num_threads=4)
        mat = spd_matrix(rng)
        n = mat.shape[0]
        b = rng.standard_normal(n)
        part = pg.distributed.partition(n, 4)
        dA = pg.distributed.matrix(dev, part, mat)
        db = pg.distributed.vector(dev, part, b, comm=dA.comm)
        dx = pg.distributed.zeros_like(db)
        solver = pg.distributed.cg(dev, dA, reduction_factor=1e-10)
        logger, x = solver.apply(db, dx)
        assert x is dx
        assert solver.converged
        assert solver.num_iterations == len(logger.residual_norms) - 1
        assert solver.final_residual_norm < 1e-6
        residual = np.linalg.norm(
            mat @ x.to_numpy()[:, 0] - b
        ) / np.linalg.norm(b)
        assert residual < 1e-8

    def test_rank_count_shorthand_and_weights(self, rng):
        dev = pg.device("omp", fresh=True, num_threads=2)
        mat = spd_matrix(rng, n=90)
        dA = pg.distributed.matrix(dev, 3, mat)
        assert dA.partition.num_ranks == 3
        nnz_per_row = np.diff(mat.indptr)
        part = pg.distributed.partition(90, 3, weights=nnz_per_row)
        assert part.num_ranks == 3
        assert part.global_size == 90

    def test_handle_rejects_dense(self, rng):
        dev = pg.device("omp", fresh=True, num_threads=2)
        mat = spd_matrix(rng, n=40)
        dA = pg.distributed.matrix(dev, 2, mat)
        solver = pg.distributed.cg(dev, dA)
        with pytest.raises(GinkgoError):
            solver.apply(np.ones(40), np.zeros(40))

    def test_binding_symbols_exist(self):
        from repro.bindings.registry import binding_names

        names = binding_names()
        assert "distributed_cg_factory_double" in names
        assert "distributed_gmres_factory_float" in names
        assert "distributed_matrix_double_int32" in names
        assert "distributed_vector_double" in names
        assert "distributed_pipelined_cg_factory_double" in names
        assert "distributed_sstep_gmres_factory_double" in names

    def test_handle_reports_comm_stats(self, rng):
        dev = pg.device("omp", fresh=True, num_threads=4)
        mat = spd_matrix(rng)
        n = mat.shape[0]
        b = rng.standard_normal(n)
        part = pg.distributed.partition(n, 4)
        dA = pg.distributed.matrix(
            dev, part, mat, overlap=True, network=ETHERNET_CLUSTER
        )
        db = pg.distributed.vector(dev, part, b, comm=dA.comm)
        dx = pg.distributed.zeros_like(db)
        solver = pg.distributed.pipelined_cg(
            dev, dA, reduction_factor=1e-10
        )
        assert solver.comm_time == 0.0  # nothing before the first apply
        solver.apply(db, dx)
        assert solver.converged
        assert solver.comm_time > 0.0
        assert solver.comm_hidden_time > 0.0
        assert solver.comm_hidden_time <= solver.comm_time
        # One fused reduction per pass (iterations + 1 at pipeline
        # depth 1) plus the setup norms — nowhere near blocking CG's
        # three per iteration.
        assert (
            solver.num_iterations + 1
            <= solver.num_reductions
            <= solver.num_iterations + 3
        )
        res = np.linalg.norm(mat @ dx.to_numpy()[:, 0] - b)
        assert res / np.linalg.norm(b) < 1e-8

    def test_handle_stats_are_per_apply_deltas(self, rng):
        dev = pg.device("omp", fresh=True, num_threads=2)
        mat = spd_matrix(rng, n=80)
        b = rng.standard_normal(80)
        part = pg.distributed.partition(80, 4)
        dA = pg.distributed.matrix(dev, part, mat)
        db = pg.distributed.vector(dev, part, b, comm=dA.comm)
        solver = pg.distributed.cg(dev, dA, reduction_factor=1e-10)
        solver.apply(db, pg.distributed.zeros_like(db))
        first = (solver.comm_time, solver.num_reductions)
        solver.apply(db, pg.distributed.zeros_like(db))
        # Same solve again: the stats describe one apply, not the total.
        assert solver.comm_time == pytest.approx(first[0])
        assert solver.num_reductions == first[1]
        # Blocking CG hides nothing.
        assert solver.comm_hidden_time == 0.0

    def test_sstep_gmres_api_wrapper(self, rng):
        dev = pg.device("omp", fresh=True, num_threads=2)
        mat = spd_matrix(rng, n=100)
        b = rng.standard_normal(100)
        part = pg.distributed.partition(100, 4)
        dA = pg.distributed.matrix(dev, part, mat)
        db = pg.distributed.vector(dev, part, b, comm=dA.comm)
        dx = pg.distributed.zeros_like(db)
        solver = pg.distributed.sstep_gmres(
            dev, dA, s_step=3, reduction_factor=1e-9
        )
        solver.apply(db, dx)
        assert solver.converged
        res = np.linalg.norm(mat @ dx.to_numpy()[:, 0] - b)
        assert res / np.linalg.norm(b) < 1e-7


class TestSequentialRanksMode:
    """The benchmark baseline: per-rank dispatch, rank-ordered reductions."""

    def test_elementwise_results_unchanged(self, ref, rng):
        from repro.ginkgo.distributed import sequential_ranks

        part = Partition.build_uniform(40, 4)
        a = rng.standard_normal(40)
        vec = Vector(ref, part, a)
        other = Vector(ref, part, np.ones(40), comm=vec.comm)
        with sequential_ranks():
            vec.add_scaled(2.0, other)
        np.testing.assert_array_equal(vec.view()[:, 0], a + 2.0)

    def test_reductions_close_but_rank_ordered(self, ref, rng):
        from repro.ginkgo.distributed import sequential_ranks

        part = Partition.build_uniform(1000, 4)
        a = rng.standard_normal(1000)
        b = rng.standard_normal(1000)
        va = Vector(ref, part, a)
        vb = Vector(ref, part, b, comm=va.comm)
        fused = va.compute_dot(vb)
        with sequential_ranks():
            sequential = va.compute_dot(vb)
        np.testing.assert_allclose(sequential, fused, rtol=1e-12)

    def test_solve_converges_and_mode_restores(self, ref, rng):
        from repro.ginkgo.distributed import sequential_ranks
        from repro.ginkgo.distributed import vector as vector_mod

        mat = spd_matrix(rng, n=80)
        b = rng.standard_normal(80)
        with sequential_ranks():
            solver, hist, x, _ = distributed_history(
                mat, b, DistributedCg, num_ranks=4, exec_=ref
            )
        assert solver.converged
        assert not vector_mod._SEQUENTIAL_RANKS
        residual = np.linalg.norm(mat @ x[:, 0] - b) / np.linalg.norm(b)
        assert residual < 1e-8

    def test_charges_per_rank_records(self, ref, rng):
        from repro.ginkgo.distributed import sequential_ranks

        part = Partition.build_uniform(40, 4)
        vec = Vector(ref, part, rng.standard_normal(40))
        import repro as pg

        dev = pg.device("omp", fresh=True, num_threads=1)
        v = pg.distributed.vector(dev, part, rng.standard_normal(40))
        with pg.profile(dev) as prof:
            v.scale(2.0)
            with sequential_ranks():
                v.scale(2.0)
        leaves = [s for s in prof.trace.walk() if s.name == "scale"]
        # One fused record, then one record per rank.
        assert len(leaves) == 1 + part.num_ranks
