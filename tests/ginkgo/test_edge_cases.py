"""Edge cases and failure injection across the engine."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.ginkgo import AllocationError, Dim
from repro.ginkgo.matrix import Coo, Csr, Dense
from repro.ginkgo.solver import Cg, Gmres
from repro.ginkgo.stop import Iteration, ResidualNorm


class TestDegenerateSizes:
    def test_one_by_one_system(self, ref):
        mtx = Csr.from_scipy(ref, sp.csr_matrix(np.array([[4.0]])))
        solver = Cg(
            ref, criteria=Iteration(10) | ResidualNorm(1e-12)
        ).generate(mtx)
        x = Dense.zeros(ref, (1, 1), np.float64)
        solver.apply(Dense(ref, np.array([[8.0]])), x)
        assert np.asarray(x)[0, 0] == pytest.approx(2.0)

    def test_empty_sparse_matrix(self, ref):
        empty = sp.csr_matrix((4, 4))
        mtx = Csr.from_scipy(ref, empty)
        assert mtx.nnz == 0
        x = Dense.zeros(ref, (4, 1), np.float64)
        mtx.apply(Dense(ref, np.ones((4, 1))), x)
        assert not np.asarray(x).any()

    def test_empty_coo(self, ref):
        mtx = Coo(
            ref, Dim(3, 3),
            np.array([], dtype=np.int32),
            np.array([], dtype=np.int32),
            np.array([], dtype=np.float64),
        )
        assert mtx.nnz == 0
        assert mtx.density == 0.0

    def test_zero_rhs_converges_immediately(self, ref, spd_small):
        mtx = Csr.from_scipy(ref, spd_small)
        solver = Cg(
            ref, criteria=Iteration(100) | ResidualNorm(1e-10)
        ).generate(mtx)
        b = Dense.zeros(ref, (spd_small.shape[0], 1), np.float64)
        x = Dense.zeros(ref, (spd_small.shape[0], 1), np.float64)
        solver.apply(b, x)
        assert solver.num_iterations == 0
        assert not np.asarray(x).any()

    def test_single_column_dense_reductions(self, ref):
        v = Dense(ref, np.zeros((5, 1)))
        assert v.compute_norm2()[0] == 0.0
        assert v.compute_dot(v)[0] == 0.0

    def test_dim_zero(self):
        d = Dim(0, 5)
        assert not d
        assert d.num_elements == 0


class TestBreakdownPaths:
    def test_gmres_on_identity_converges_in_one(self, ref):
        from repro.ginkgo.lin_op import Identity

        op = Identity(ref, 10)
        solver = Gmres(
            ref, criteria=Iteration(50) | ResidualNorm(1e-12)
        ).generate(op)
        b = Dense(ref, np.arange(1.0, 11.0).reshape(-1, 1))
        x = Dense.zeros(ref, (10, 1), np.float64)
        solver.apply(b, x)
        assert solver.converged
        assert solver.num_iterations <= 2
        np.testing.assert_allclose(np.asarray(x), np.asarray(b))

    def test_cg_breakdown_on_singular_matrix_stops(self, ref):
        # A singular SPD-semidefinite matrix: CG must not crash or loop.
        singular = sp.csr_matrix(np.diag([1.0, 1.0, 0.0]))
        mtx = Csr.from_scipy(ref, singular)
        solver = Cg(ref, criteria=Iteration(20)).generate(mtx)
        b = Dense(ref, np.array([[1.0], [1.0], [1.0]]))
        x = Dense.zeros(ref, (3, 1), np.float64)
        solver.apply(b, x)  # must terminate
        assert solver.num_iterations <= 20

    def test_scale_by_zero_zeroes(self, ref):
        v = Dense(ref, np.ones((4, 1)))
        v.scale(0.0)
        assert not np.asarray(v).any()


class TestDeviceFailureInjection:
    def test_oom_on_matrix_creation(self, cuda):
        # A matrix bigger than the A100's 40 GB must fail cleanly without
        # actually allocating host RAM for the attempt.
        huge_nnz = int(3e9)  # ~36 GB of values alone at fp64... simulated
        with pytest.raises(AllocationError):
            cuda._track_alloc(huge_nnz * 16)

    def test_partial_allocation_rolls_up_accounting(self, cuda):
        before = cuda.bytes_allocated
        buf = cuda.alloc((1000,), np.float64)
        cuda.free(buf)
        assert cuda.bytes_allocated == before

    def test_clock_monotone_across_mixed_operations(self, cuda, rng):
        mtx = Csr.from_scipy(
            cuda, sp.random(200, 200, density=0.05,
                            random_state=rng, format="csr")
        )
        stamps = [cuda.clock.now]
        b = Dense(cuda, rng.standard_normal((200, 1)))
        x = Dense.zeros(cuda, (200, 1), np.float64)
        for _ in range(5):
            mtx.apply(b, x)
            stamps.append(cuda.clock.now)
        assert all(a < b for a, b in zip(stamps, stamps[1:]))


class TestMultiColumnEdgeCases:
    def test_wide_rhs_block(self, ref, spd_small, rng):
        # More right-hand sides than a warp: still correct.
        k = 40
        mtx = Csr.from_scipy(ref, spd_small)
        xstar = rng.standard_normal((spd_small.shape[0], k))
        solver = Cg(
            ref, criteria=Iteration(500) | ResidualNorm(1e-10)
        ).generate(mtx)
        x = Dense.zeros(ref, (spd_small.shape[0], k), np.float64)
        solver.apply(Dense(ref, spd_small @ xstar), x)
        np.testing.assert_allclose(np.asarray(x), xstar, atol=1e-6)

    def test_columns_converge_independently(self, ref, spd_small, rng):
        # One easy column (zero RHS) and one hard column: the residual
        # criterion requires all columns below threshold.
        mtx = Csr.from_scipy(ref, spd_small)
        xstar = rng.standard_normal((spd_small.shape[0], 1))
        b = np.hstack([np.zeros_like(xstar), spd_small @ xstar])
        solver = Cg(
            ref, criteria=Iteration(500) | ResidualNorm(1e-10)
        ).generate(mtx)
        x = Dense.zeros(ref, b.shape, np.float64)
        solver.apply(Dense(ref, b), x)
        np.testing.assert_allclose(np.asarray(x)[:, 0], 0.0, atol=1e-8)
        np.testing.assert_allclose(
            np.asarray(x)[:, 1:], xstar, atol=1e-6
        )


class TestMixedPrecisionPaths:
    def test_fp32_matrix_fp64_vectors(self, ref, spd_small, rng):
        # Mixed-precision apply: fp32 matrix values, fp64 vectors.
        mtx32 = Csr.from_scipy(ref, spd_small, value_dtype=np.float32)
        b = rng.standard_normal((spd_small.shape[0], 1))
        x = Dense.zeros(ref, b.shape, np.float64)
        mtx32.apply(Dense(ref, b), x)
        np.testing.assert_allclose(
            np.asarray(x), spd_small @ b, rtol=1e-5, atol=1e-5
        )

    def test_half_vector_ops_round_correctly(self, ref):
        v = Dense(ref, np.ones((100, 1), dtype=np.float16))
        v.scale(3.0)
        v.add_scaled(0.5, Dense(ref, np.full((100, 1), 2.0, np.float16)))
        np.testing.assert_allclose(
            np.asarray(v).astype(np.float64), 4.0, atol=1e-2
        )
