"""Executor tests: creation, memory spaces, copies, clocks."""

import numpy as np
import pytest

from repro.ginkgo import (
    AllocationError,
    CudaExecutor,
    HipExecutor,
    OmpExecutor,
    ReferenceExecutor,
)
from repro.ginkgo.exceptions import GinkgoError


class TestCreation:
    def test_direct_construction_forbidden(self):
        # Mirrors Ginkgo's protected constructors (paper section 4.1).
        with pytest.raises(TypeError, match="create"):
            ReferenceExecutor()

    def test_create_factory_works_for_all(self):
        for cls in (ReferenceExecutor, OmpExecutor, CudaExecutor, HipExecutor):
            assert isinstance(cls.create(noisy=False), cls)

    def test_names(self):
        assert ReferenceExecutor.create().name == "reference"
        assert OmpExecutor.create().name == "omp"
        assert CudaExecutor.create().name == "cuda"
        assert HipExecutor.create().name == "hip"

    def test_host_flags(self):
        assert ReferenceExecutor.create().is_host
        assert OmpExecutor.create().is_host
        assert not CudaExecutor.create().is_host
        assert not HipExecutor.create().is_host

    def test_gpu_has_master_host_executor(self):
        cuda = CudaExecutor.create()
        assert cuda.get_master().is_host
        ref = ReferenceExecutor.create()
        assert ref.get_master() is ref

    def test_omp_thread_validation(self):
        with pytest.raises(GinkgoError):
            OmpExecutor.create(num_threads=0)

    def test_device_specs(self):
        assert "A100" in CudaExecutor.create().spec.name
        assert "MI100" in HipExecutor.create().spec.name


class TestMemory:
    def test_alloc_tracks_bytes(self, ref):
        before = ref.bytes_allocated
        buf = ref.alloc((100,), np.float64)
        assert ref.bytes_allocated == before + buf.nbytes
        assert ref.allocation_count >= 1

    def test_alloc_zero_initialised(self, ref):
        assert not ref.alloc((50,), np.float64).any()

    def test_free_returns_bytes(self, ref):
        buf = ref.alloc((100,), np.float64)
        used = ref.bytes_allocated
        ref.free(buf)
        assert ref.bytes_allocated == used - buf.nbytes

    def test_peak_tracking(self, ref):
        buf = ref.alloc((1000,), np.float64)
        ref.free(buf)
        assert ref.peak_bytes_allocated >= buf.nbytes

    def test_out_of_memory_raises(self, cuda):
        # The A100 spec has 40 GB; a 50 GB request must fail without
        # actually allocating host RAM.
        with pytest.raises(AllocationError, match="failed to allocate"):
            cuda._track_alloc(int(50e9))


class TestDataMovement:
    def test_host_to_device_roundtrip(self, ref, cuda):
        data = np.arange(10, dtype=np.float64)
        on_device = cuda.copy_from(ref, data)
        back = ref.copy_from(cuda, on_device)
        np.testing.assert_array_equal(back, data)

    def test_copy_is_a_copy(self, ref):
        data = np.arange(10, dtype=np.float64)
        copied = ref.copy_from(ref, data)
        copied[0] = 99
        assert data[0] == 0

    def test_pcie_transfer_advances_both_clocks(self, ref, cuda):
        data = np.zeros(1 << 20)
        t_ref, t_cuda = ref.clock.now, cuda.clock.now
        cuda.copy_from(ref, data)
        assert cuda.clock.now > t_cuda
        assert ref.clock.now > t_ref

    def test_larger_transfers_take_longer(self, ref, cuda):
        t0 = cuda.clock.now
        cuda.copy_from(ref, np.zeros(1 << 10))
        small = cuda.clock.now - t0
        t0 = cuda.clock.now
        cuda.copy_from(ref, np.zeros(1 << 24))
        large = cuda.clock.now - t0
        assert large > 10 * small

    def test_synchronize_advances_clock(self, cuda):
        before = cuda.clock.now
        cuda.synchronize()
        assert cuda.clock.now > before
