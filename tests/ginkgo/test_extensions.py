"""Tests for the extension features: IDR(s), CB-GMRES, AMG, RCM
reordering, equilibration, the stencil/convolution operator, and the
performance logger."""

import numpy as np
import pytest
import scipy.sparse as sp
from scipy.ndimage import correlate

from repro.ginkgo.exceptions import BadDimension, GinkgoError
from repro.ginkgo.log import PerformanceLogger
from repro.ginkgo.matrix import Csr, Dense
from repro.ginkgo.matrix.stencil import KERNELS, StencilOp, convolution_matrix
from repro.ginkgo.multigrid import (
    Pgm,
    pairwise_aggregation,
    prolongation_from_aggregates,
)
from repro.ginkgo.reorder import bandwidth, permute, rcm
from repro.ginkgo.scaling import equilibrate
from repro.ginkgo.solver import CbGmres, Cg, Gmres, Idr
from repro.ginkgo.stop import Iteration, ResidualNorm
from repro.suitesparse import banded, poisson_2d

CRIT = Iteration(600) | ResidualNorm(1e-10)


class TestIdr:
    @pytest.mark.parametrize("s", [1, 2, 4])
    def test_converges_on_nonsymmetric(self, ref, general_small, rng, s):
        mtx = Csr.from_scipy(ref, general_small)
        solver = Idr(ref, criteria=CRIT, subspace_dim=s).generate(mtx)
        xstar = rng.standard_normal((general_small.shape[0], 1))
        x = Dense.zeros(ref, xstar.shape, np.float64)
        solver.apply(Dense(ref, general_small @ xstar), x)
        assert solver.converged
        np.testing.assert_allclose(np.asarray(x), xstar, atol=1e-6)

    def test_converges_on_spd(self, ref, spd_small, rng):
        mtx = Csr.from_scipy(ref, spd_small)
        solver = Idr(ref, criteria=CRIT).generate(mtx)
        xstar = rng.standard_normal((spd_small.shape[0], 1))
        x = Dense.zeros(ref, xstar.shape, np.float64)
        solver.apply(Dense(ref, spd_small @ xstar), x)
        assert solver.converged

    def test_deterministic_shadow_space(self, ref, general_small, rng):
        xstar = rng.standard_normal((general_small.shape[0], 1))
        b = general_small @ xstar
        results = []
        for _ in range(2):
            mtx = Csr.from_scipy(ref, general_small)
            solver = Idr(ref, criteria=Iteration(15)).generate(mtx)
            x = Dense.zeros(ref, xstar.shape, np.float64)
            solver.apply(Dense(ref, b), x)
            results.append(np.asarray(x).copy())
        np.testing.assert_array_equal(results[0], results[1])

    def test_invalid_subspace_dim(self, ref, spd_small, rng):
        mtx = Csr.from_scipy(ref, spd_small)
        solver = Idr(ref, subspace_dim=0).generate(mtx)
        b = Dense(ref, rng.standard_normal((spd_small.shape[0], 1)))
        x = Dense.zeros(ref, (spd_small.shape[0], 1), np.float64)
        with pytest.raises(GinkgoError, match="subspace_dim"):
            solver.apply(b, x)

    def test_with_preconditioner(self, ref, general_small, rng):
        from repro.ginkgo.preconditioner import Jacobi

        mtx = Csr.from_scipy(ref, general_small)
        plain = Idr(ref, criteria=CRIT).generate(mtx)
        precond = Idr(
            ref, criteria=CRIT, preconditioner=Jacobi(ref)
        ).generate(mtx)
        xstar = rng.standard_normal((general_small.shape[0], 1))
        b = general_small @ xstar
        for solver in (plain, precond):
            x = Dense.zeros(ref, xstar.shape, np.float64)
            solver.apply(Dense(ref, b), x)
            assert solver.converged
        assert precond.num_iterations <= plain.num_iterations + 5


class TestCbGmres:
    @pytest.mark.parametrize("storage", ["float32", "half"])
    def test_converges_with_compressed_basis(self, ref, spd_small, rng,
                                             storage):
        mtx = Csr.from_scipy(ref, spd_small)
        solver = CbGmres(
            ref,
            criteria=Iteration(600) | ResidualNorm(1e-8),
            storage_precision=storage,
        ).generate(mtx)
        xstar = rng.standard_normal((spd_small.shape[0], 1))
        x = Dense.zeros(ref, xstar.shape, np.float64)
        solver.apply(Dense(ref, spd_small @ xstar), x)
        assert solver.converged
        np.testing.assert_allclose(np.asarray(x), xstar, atol=1e-4)

    def test_faster_per_iteration_than_gmres(self, ref):
        # The compressed basis halves the dominant memory traffic.
        matrix = poisson_2d(80)
        mtx = Csr.from_scipy(ref, matrix)
        times = {}
        for name, factory in (
            ("gmres", Gmres(ref, criteria=Iteration(60))),
            ("cb", CbGmres(ref, criteria=Iteration(60))),
        ):
            solver = factory.generate(mtx)
            b = Dense.full(ref, (matrix.shape[0], 1), 1.0, np.float64)
            x = Dense.zeros(ref, (matrix.shape[0], 1), np.float64)
            start = ref.clock.now
            solver.apply(b, x)
            times[name] = ref.clock.now - start
        assert times["cb"] < times["gmres"]

    def test_half_basis_cheaper_than_float_basis(self, ref):
        matrix = poisson_2d(80)
        mtx = Csr.from_scipy(ref, matrix)
        times = {}
        for storage in ("float32", "half"):
            solver = CbGmres(
                ref, criteria=Iteration(60), storage_precision=storage
            ).generate(mtx)
            b = Dense.full(ref, (matrix.shape[0], 1), 1.0, np.float64)
            x = Dense.zeros(ref, (matrix.shape[0], 1), np.float64)
            start = ref.clock.now
            solver.apply(b, x)
            times[storage] = ref.clock.now - start
        assert times["half"] < times["float32"]

    def test_restart_parameter(self, ref, spd_small):
        mtx = Csr.from_scipy(ref, spd_small)
        solver = CbGmres(ref, criteria=CRIT, krylov_dim=5).generate(mtx)
        b = Dense.full(ref, (spd_small.shape[0], 1), 1.0, np.float64)
        x = Dense.zeros(ref, (spd_small.shape[0], 1), np.float64)
        solver.apply(b, x)
        assert solver.converged


class TestMultigrid:
    def test_aggregation_covers_all_nodes(self):
        matrix = poisson_2d(12)
        agg = pairwise_aggregation(matrix)
        assert agg.min() == 0
        assert agg.size == matrix.shape[0]
        # Pairwise matching roughly halves the node count.
        n_coarse = agg.max() + 1
        assert matrix.shape[0] / 3 < n_coarse < matrix.shape[0]

    def test_prolongation_partitions_unity(self):
        agg = np.array([0, 0, 1, 1, 2])
        p = prolongation_from_aggregates(agg)
        assert p.shape == (5, 3)
        np.testing.assert_array_equal(
            np.asarray(p.sum(axis=1)).ravel(), 1.0
        )

    def test_hierarchy_shrinks(self, ref):
        matrix = poisson_2d(32)
        amg = Pgm(ref, coarse_size=32).generate(Csr.from_scipy(ref, matrix))
        sizes = amg.level_sizes
        assert all(a > b for a, b in zip(sizes, sizes[1:]))
        assert sizes[-1] <= 64

    def test_vcycle_reduces_error(self, ref, rng):
        matrix = poisson_2d(24)
        mtx = Csr.from_scipy(ref, matrix)
        amg = Pgm(ref).generate(mtx)
        xstar = rng.standard_normal((matrix.shape[0], 1))
        b = matrix @ xstar
        approx = Dense.zeros(ref, b.shape, np.float64)
        amg.apply(Dense(ref, b), approx)
        err_after = np.linalg.norm(np.asarray(approx) - xstar)
        err_before = np.linalg.norm(xstar)
        assert err_after < 0.7 * err_before

    def test_amg_accelerates_cg(self, ref):
        matrix = poisson_2d(36)
        mtx = Csr.from_scipy(ref, matrix)
        b = Dense.full(ref, (matrix.shape[0], 1), 1.0, np.float64)

        def iterations(precond):
            solver = Cg(
                ref, criteria=Iteration(800) | ResidualNorm(1e-9),
                preconditioner=precond,
            ).generate(mtx)
            x = Dense.zeros(ref, (matrix.shape[0], 1), np.float64)
            solver.apply(b, x)
            assert solver.converged
            return solver.num_iterations

        plain = iterations(None)
        amg = iterations(Pgm(ref).generate(mtx))
        assert amg < plain / 2

    def test_mesh_robustness(self, ref):
        # AMG iteration counts grow much slower than unpreconditioned CG
        # as the mesh refines.
        counts = {}
        for n in (16, 32):
            matrix = poisson_2d(n)
            mtx = Csr.from_scipy(ref, matrix)
            solver = Cg(
                ref, criteria=Iteration(800) | ResidualNorm(1e-9),
                preconditioner=Pgm(ref).generate(mtx),
            ).generate(mtx)
            b = Dense.full(ref, (matrix.shape[0], 1), 1.0, np.float64)
            x = Dense.zeros(ref, (matrix.shape[0], 1), np.float64)
            solver.apply(b, x)
            counts[n] = solver.num_iterations
        assert counts[32] <= 2.0 * counts[16]

    def test_parameter_validation(self, ref):
        with pytest.raises(GinkgoError):
            Pgm(ref, max_levels=0)
        with pytest.raises(GinkgoError):
            Pgm(ref, coarse_size=0)

    def test_requires_square(self, ref, rect_small):
        with pytest.raises(BadDimension):
            Pgm(ref).generate(Csr.from_scipy(ref, rect_small))


class TestRcm:
    def test_reduces_bandwidth_of_shuffled_band(self, ref, rng):
        base = banded(200, bandwidth=3, seed=1)
        shuffle = rng.permutation(200)
        shuffled = base.tocsr()[shuffle, :][:, shuffle].tocsr()
        mtx = Csr.from_scipy(ref, shuffled)
        before = bandwidth(mtx)
        reordered = permute(mtx, rcm(mtx))
        after = bandwidth(reordered)
        assert after < before / 4

    def test_permute_preserves_values(self, ref, general_small, rng):
        mtx = Csr.from_scipy(ref, general_small)
        perm = rcm(mtx)
        reordered = permute(mtx, perm)
        order = perm.permutation
        expect = general_small.toarray()[order, :][:, order]
        np.testing.assert_allclose(reordered.to_scipy().toarray(), expect)

    def test_permuted_solve_matches(self, ref, spd_small, rng):
        # Solving the reordered system and un-permuting recovers x.
        mtx = Csr.from_scipy(ref, spd_small)
        perm = rcm(mtx)
        order = perm.permutation
        reordered = permute(mtx, perm)
        xstar = rng.standard_normal((spd_small.shape[0], 1))
        b = spd_small @ xstar
        solver = Cg(ref, criteria=CRIT).generate(reordered)
        x_perm = Dense.zeros(ref, b.shape, np.float64)
        solver.apply(Dense(ref, b[order]), x_perm)
        recovered = np.empty_like(xstar)
        recovered[order] = np.asarray(x_perm)
        np.testing.assert_allclose(recovered, xstar, atol=1e-6)

    def test_requires_square(self, ref, rect_small):
        with pytest.raises(BadDimension):
            rcm(Csr.from_scipy(ref, rect_small))

    def test_bandwidth_helper(self):
        assert bandwidth(sp.eye(5, format="csr")) == 0
        tri = sp.diags([np.ones(4), np.ones(5)], [-1, 0], format="csr")
        assert bandwidth(tri) == 1


class TestEquilibrate:
    def test_scaled_matrix_has_moderate_norms(self, ref):
        badly_scaled = sp.diags(
            np.logspace(-6, 6, 60)
        ) @ banded(60, bandwidth=2, seed=2)
        mtx = Csr.from_scipy(ref, badly_scaled.tocsr())
        eq = equilibrate(mtx, iterations=3)
        scaled = abs(eq.scaled_matrix.to_scipy())
        row_max = np.asarray(scaled.max(axis=1).todense()).ravel()
        assert row_max.max() < 10.0
        assert row_max[row_max > 0].min() > 0.05

    def test_solution_recovery(self, ref, rng):
        badly_scaled = (
            sp.diags(np.logspace(-3, 3, 50))
            @ banded(50, bandwidth=2, seed=3)
        ).tocsr()
        mtx = Csr.from_scipy(ref, badly_scaled)
        eq = equilibrate(mtx)
        b = rng.standard_normal(50)
        y = np.linalg.solve(
            eq.scaled_matrix.to_scipy().toarray(), eq.scale_rhs(b)
        )
        x = eq.unscale_solution(y)
        np.testing.assert_allclose(badly_scaled @ x, b, atol=1e-6)

    def test_requires_square(self, ref, rect_small):
        with pytest.raises(BadDimension):
            equilibrate(Csr.from_scipy(ref, rect_small))


class TestStencil:
    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_matches_scipy_correlate(self, ref, rng, name):
        image = rng.standard_normal((12, 17))
        op = StencilOp(ref, image.shape, KERNELS[name])
        expect = correlate(image, KERNELS[name], mode="constant")
        np.testing.assert_allclose(op.apply_image(image), expect, atol=1e-12)

    def test_identity_kernel(self, ref, rng):
        image = rng.standard_normal((8, 8))
        op = StencilOp(ref, (8, 8), KERNELS["identity"])
        np.testing.assert_allclose(op.apply_image(image), image)

    def test_is_a_linop(self, ref, rng):
        op = StencilOp(ref, (6, 6), KERNELS["blur3"])
        assert op.size == (36, 36)
        b = Dense(ref, rng.standard_normal((36, 2)))
        x = Dense.zeros(ref, (36, 2), np.float64)
        op.apply(b, x)  # multi-RHS works through the LinOp interface

    def test_composes_with_other_operators(self, ref, rng):
        from repro.ginkgo.lin_op import Composition

        blur = StencilOp(ref, (10, 10), KERNELS["blur3"])
        edge = StencilOp(ref, (10, 10), KERNELS["laplace"])
        pipeline = Composition(edge, blur)
        image = rng.standard_normal((10, 10))
        flat = Dense(ref, image.reshape(-1, 1))
        out = Dense.zeros(ref, (100, 1), np.float64)
        pipeline.apply(flat, out)
        expect = correlate(
            correlate(image, KERNELS["blur3"], mode="constant"),
            KERNELS["laplace"], mode="constant",
        )
        np.testing.assert_allclose(
            np.asarray(out).reshape(10, 10), expect, atol=1e-12
        )

    def test_even_kernel_rejected(self, ref):
        with pytest.raises(BadDimension, match="odd"):
            StencilOp(ref, (8, 8), np.ones((2, 2)))

    def test_wrong_image_shape_rejected(self, ref, rng):
        op = StencilOp(ref, (8, 8), KERNELS["blur3"])
        with pytest.raises(BadDimension):
            op.apply_image(rng.standard_normal((9, 9)))

    def test_convolution_matrix_band_count(self):
        mat = convolution_matrix((5, 5), KERNELS["laplace"])
        # 5 taps, minus boundary truncation.
        assert mat.nnz == 5 * 25 - 4 * 5

    def test_apply_charges_clock(self, ref, rng):
        op = StencilOp(ref, (16, 16), KERNELS["sharpen"])
        before = ref.clock.now
        op.apply_image(rng.standard_normal((16, 16)))
        assert ref.clock.now > before


class TestPerformanceLogger:
    def test_profiles_solver_pipeline(self, ref, spd_small):
        mtx = Csr.from_scipy(ref, spd_small)
        solver = Cg(ref, criteria=Iteration(10)).generate(mtx)
        profiler = PerformanceLogger()
        solver.add_logger(profiler)
        mtx.add_logger(profiler)
        b = Dense.full(ref, (spd_small.shape[0], 1), 1.0, np.float64)
        x = Dense.zeros(ref, (spd_small.shape[0], 1), np.float64)
        solver.apply(b, x)
        assert profiler.counts["CgSolver"] == 1
        # One SpMV per iteration plus the initial-residual computation.
        assert profiler.counts["Csr"] == 11
        # The solver's total time includes the SpMVs.
        assert profiler.totals["CgSolver"] > profiler.totals["Csr"]

    def test_summary_format(self, ref, spd_small):
        mtx = Csr.from_scipy(ref, spd_small)
        solver = Cg(ref, criteria=Iteration(3)).generate(mtx)
        profiler = PerformanceLogger()
        solver.add_logger(profiler)
        b = Dense.full(ref, (spd_small.shape[0], 1), 1.0, np.float64)
        solver.apply(
            b, Dense.zeros(ref, (spd_small.shape[0], 1), np.float64)
        )
        text = profiler.summary()
        assert "CgSolver" in text
        assert "100.0%" in text

    def test_empty_profile(self):
        profiler = PerformanceLogger()
        assert profiler.total_time == 0.0
        assert "operator" in profiler.summary()
