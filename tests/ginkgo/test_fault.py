"""Fault-injection layer: deterministic schedules, rates, and accounting."""

import numpy as np
import pytest

from repro.ginkgo import (
    AllocationError,
    CudaError,
    CudaExecutor,
    FaultInjector,
    FaultyExecutor,
    GinkgoError,
    OmpExecutor,
    ReferenceExecutor,
)
from repro.ginkgo.log import RecordLogger
from repro.ginkgo.matrix import Csr, Dense
from repro.perfmodel import KernelCost


def make_faulty(injector=None, **injector_kwargs):
    injector = injector or FaultInjector(**injector_kwargs)
    inner = CudaExecutor.create(noisy=False)
    return FaultyExecutor.create(inner, injector), injector


class TestInjectorPolicy:
    def test_invalid_rate_rejected(self):
        with pytest.raises(GinkgoError, match="rate"):
            FaultInjector(kernel_rate=1.5)
        with pytest.raises(GinkgoError, match="exceed"):
            FaultInjector(kernel_rate=0.7, stall_rate=0.7)

    def test_invalid_schedule_rejected(self):
        with pytest.raises(GinkgoError, match="site"):
            FaultInjector(schedule={"nope": [0]})
        with pytest.raises(GinkgoError, match="kind"):
            FaultInjector(schedule={"alloc": [(0, "stall")]})

    def test_schedule_fires_at_exact_calls(self):
        inj = FaultInjector(schedule={"run": [1, 3]})
        verdicts = [inj.decide("run") is not None for _ in range(5)]
        assert verdicts == [False, True, False, True, False]
        assert [f.call for f in inj.injected] == [1, 3]

    def test_same_seed_same_sequence(self):
        def sequence():
            inj = FaultInjector(seed=42, kernel_rate=0.3, stall_rate=0.1)
            for _ in range(200):
                inj.decide("run", detail="k")
            return [(f.site, f.kind, f.call) for f in inj.injected]

        first, second = sequence(), sequence()
        assert first == second
        assert len(first) > 0

    def test_different_seeds_differ(self):
        def faults(seed):
            inj = FaultInjector(seed=seed, kernel_rate=0.3)
            for _ in range(100):
                inj.decide("run")
            return [f.call for f in inj.injected]

        assert faults(1) != faults(2)

    def test_max_faults_caps_injection(self):
        inj = FaultInjector(schedule={"run": [0, 1, 2, 3]}, max_faults=2)
        fired = [inj.decide("run") is not None for _ in range(4)]
        assert fired == [True, True, False, False]
        assert inj.fault_count == 2

    def test_paused_suspends_and_preserves_counters(self):
        inj = FaultInjector(schedule={"run": [0]})
        with inj.paused():
            assert inj.decide("run") is None
            assert inj.calls("run") == 0
        # The scheduled call index 0 is still pending once re-armed.
        assert inj.decide("run") is not None

    def test_corrupt_nan_and_bitflip(self):
        inj = FaultInjector(seed=0, corruption_mode="nan")
        buf = np.ones(16)
        idx = inj.corrupt(buf)
        assert np.isnan(buf[idx])
        inj2 = FaultInjector(seed=0, corruption_mode="bitflip")
        buf2 = np.ones(16)
        idx2 = inj2.corrupt(buf2)
        assert buf2[idx2] != 1.0


class TestFaultyExecutor:
    def test_requires_create_factory(self):
        with pytest.raises(TypeError, match="create"):
            FaultyExecutor(CudaExecutor.create(noisy=False), FaultInjector())

    def test_rejects_double_wrap_and_non_executor(self):
        exec_, inj = make_faulty()
        with pytest.raises(GinkgoError, match="already-faulty"):
            FaultyExecutor.create(exec_, inj)
        with pytest.raises(GinkgoError, match="Executor"):
            FaultyExecutor.create("cuda", inj)

    def test_transparent_delegation(self):
        exec_, _ = make_faulty()
        assert exec_.name == "cuda"
        assert not exec_.is_host
        assert exec_.get_master().is_host
        assert exec_.spec is exec_.inner.spec
        assert exec_.clock is exec_.inner.clock
        assert exec_.bytes_allocated == exec_.inner.bytes_allocated

    def test_host_wrapper_is_its_own_master(self):
        inj = FaultInjector()
        host = FaultyExecutor.create(ReferenceExecutor.create(noisy=False), inj)
        assert host.get_master() is host

    def test_transient_kernel_fault(self):
        exec_, inj = make_faulty(schedule={"run": [0]})
        with pytest.raises(CudaError, match="transient fault in kernel"):
            exec_.run(KernelCost("spmv", 1.0, 8.0))
        # The next kernel goes through and advances the clock.
        before = exec_.clock.now
        exec_.run(KernelCost("spmv", 1.0, 8.0))
        assert exec_.clock.now > before

    def test_stall_delays_but_completes(self):
        exec_, inj = make_faulty(
            injector=FaultInjector(
                schedule={"run": [(0, "stall")]}, stall_seconds=0.5
            )
        )
        before = exec_.clock.now
        exec_.run(KernelCost("spmv", 1.0, 8.0))
        assert exec_.clock.now - before >= 0.5
        assert inj.injected[0].kind == "stall"

    def test_alloc_fault_does_not_skew_accounting(self):
        exec_, inj = make_faulty(schedule={"alloc": [0]})
        count = exec_.allocation_count
        used = exec_.bytes_allocated
        peak = exec_.peak_bytes_allocated
        with pytest.raises(AllocationError):
            exec_.alloc((100,), np.float64)
        assert exec_.allocation_count == count
        assert exec_.bytes_allocated == used
        assert exec_.peak_bytes_allocated == peak
        # Next allocation succeeds and is tracked on the inner executor.
        buf = exec_.alloc((100,), np.float64)
        assert exec_.bytes_allocated == used + buf.nbytes

    def test_copy_transient_fault(self):
        exec_, inj = make_faulty(schedule={"copy": [0]})
        host = exec_.get_master()
        data = np.ones(8)
        with pytest.raises(CudaError, match="copying"):
            exec_.copy_from(host, data)
        out = exec_.copy_from(host, data)
        np.testing.assert_array_equal(out, data)

    def test_copy_corruption_poisons_buffer(self):
        exec_, inj = make_faulty(schedule={"copy": [(0, "corruption")]})
        out = exec_.copy_from(exec_.get_master(), np.ones(64))
        assert np.isnan(out).sum() == 1

    def test_fault_events_logged(self):
        exec_, inj = make_faulty(schedule={"run": [0], "alloc": [1]})
        log = RecordLogger()
        exec_.add_logger(log)
        with pytest.raises(CudaError):
            exec_.run(KernelCost("gemv", 1.0, 8.0))
        exec_.alloc((4,), np.float64)
        with pytest.raises(AllocationError):
            exec_.alloc((4,), np.float64)
        assert log.count("fault_injected") == 2
        events = [e for e in log.events if e[0] == "fault_injected"]
        assert events[0][2]["site"] == "run"
        assert events[0][2]["detail"] == "gemv"
        assert events[1][2]["site"] == "alloc"

    def test_operators_work_on_faulty_executor(self, rng):
        import scipy.sparse as sp

        exec_, inj = make_faulty(kernel_rate=0.0)
        A = sp.random(50, 50, density=0.1, random_state=rng, format="csr")
        mtx = Csr.from_scipy(exec_, A)
        x = Dense.full(exec_, (50, 1), 1.0, np.float64)
        y = Dense.zeros(exec_, (50, 1), np.float64)
        mtx.apply(x, y)
        expected = A @ np.ones((50, 1))
        np.testing.assert_allclose(y.to_numpy(), expected, rtol=1e-13)

    def test_deterministic_fault_sequence_through_executor(self):
        def run_once():
            exec_, inj = make_faulty(
                injector=FaultInjector(seed=9, kernel_rate=0.2)
            )
            for i in range(50):
                try:
                    exec_.run(KernelCost(f"k{i}", 1.0, 8.0))
                except CudaError:
                    pass
            return [(f.site, f.kind, f.call, f.detail) for f in inj.injected]

        assert run_once() == run_once()


class TestOutOfMemoryPaths:
    """AllocationError paths on a near-full device executor."""

    def test_oversized_alloc_keeps_counters(self, cuda):
        capacity = cuda.spec.memory_capacity
        count = cuda.allocation_count
        # A request beyond capacity must fail before host allocation and
        # leave the counters untouched.
        with pytest.raises(AllocationError):
            cuda.alloc((int(capacity // 8 + 1),), np.float64)
        assert cuda.allocation_count == count
        assert cuda.bytes_allocated == 0
        assert cuda.peak_bytes_allocated == 0

    def test_near_full_device_rejects_next_alloc(self, cuda):
        # Fill the simulated device to ~99.9% without real host memory:
        # account a large region directly, then try a real small alloc.
        headroom = 1024
        cuda._track_alloc(int(cuda.spec.memory_capacity) - headroom)
        with pytest.raises(AllocationError, match="failed to allocate"):
            cuda.alloc((headroom,), np.float64)  # 8x headroom bytes
        ok = cuda.alloc((headroom // 8,), np.float64)
        assert ok.nbytes <= headroom

    def test_copy_from_oom_on_full_device(self, cuda, ref):
        cuda._track_alloc(int(cuda.spec.memory_capacity))
        with pytest.raises(AllocationError):
            cuda.copy_from(ref, np.ones(1024))

    def test_failed_alloc_then_success_accounting(self, cuda):
        buf = cuda.alloc((1000,), np.float64)
        used = cuda.bytes_allocated
        count = cuda.allocation_count
        with pytest.raises(AllocationError):
            cuda.alloc((int(1e12),), np.float64)
        assert cuda.bytes_allocated == used
        assert cuda.allocation_count == count
        cuda.free(buf)
        assert cuda.bytes_allocated == used - buf.nbytes


class TestFreeBookkeeping:
    def test_double_free_raises(self, ref):
        buf = ref.alloc((10,), np.float64)
        ref.free(buf)
        with pytest.raises(GinkgoError, match="free"):
            ref.free(buf)

    def test_free_of_foreign_buffer_raises(self, ref):
        with pytest.raises(GinkgoError, match="free"):
            ref.free(np.ones(10))

    def test_double_free_cannot_corrupt_peak(self, ref):
        a = ref.alloc((100,), np.float64)
        b = ref.alloc((100,), np.float64)
        peak = ref.peak_bytes_allocated
        ref.free(a)
        with pytest.raises(GinkgoError):
            ref.free(a)
        assert ref.bytes_allocated == b.nbytes
        assert ref.peak_bytes_allocated == peak

    def test_free_through_faulty_wrapper(self):
        exec_, _ = make_faulty()
        buf = exec_.alloc((10,), np.float64)
        exec_.free(buf)
        with pytest.raises(GinkgoError):
            exec_.free(buf)
