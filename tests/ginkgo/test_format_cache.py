"""Derived-object memoization on matrices: hits, invalidation, charges."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.ginkgo import cachestats
from repro.ginkgo.matrix import Coo, Csr, Dense, Ell, Hybrid, Sellp


@pytest.fixture
def small_sp(rng):
    mat = sp.random(12, 12, density=0.4, format="csr", random_state=rng)
    mat.setdiag(4.0)
    return mat.tocsr()


class TestMemoization:
    def test_transpose_memoized(self, ref, small_sp):
        mtx = Csr.from_scipy(ref, small_sp)
        t1 = mtx.transpose()
        t2 = mtx.transpose()
        assert t2 is t1  # hits return the same derived object

    def test_conversions_memoized_per_key(self, ref, small_sp):
        mtx = Csr.from_scipy(ref, small_sp)
        assert mtx.convert_to_coo() is mtx.convert_to_coo()
        assert mtx.convert_to_ell() is mtx.convert_to_ell()
        # Different parameters are different cache keys.
        s1 = mtx.convert_to_sellp(slice_size=8)
        s2 = mtx.convert_to_sellp(slice_size=16)
        assert s1 is not s2
        assert mtx.convert_to_sellp(slice_size=8) is s1

    @pytest.mark.parametrize("cls", [Coo, Ell, Sellp, Hybrid])
    def test_convert_to_csr_memoized(self, cls, ref, small_sp):
        mtx = cls.from_scipy(ref, small_sp)
        assert mtx.convert_to_csr() is mtx.convert_to_csr()

    def test_dense_transpose_memoized(self, ref, rng):
        d = Dense(ref, rng.standard_normal((6, 4)))
        assert d.transpose() is d.transpose()

    def test_format_hits_counted(self, ref, small_sp):
        mtx = Csr.from_scipy(ref, small_sp)
        cachestats.reset()
        mtx.transpose()
        mtx.transpose()
        hits, misses = cachestats.counts("format")
        assert hits >= 1 and misses >= 1


class TestInvalidation:
    def test_mark_modified_invalidates(self, ref, small_sp):
        mtx = Csr.from_scipy(ref, small_sp)
        t1 = mtx.transpose()
        version = mtx.data_version
        mtx.mark_modified()
        assert mtx.data_version == version + 1
        assert mtx.transpose() is not t1

    def test_coo_stale_csr_cache_regression(self, ref):
        """In-place value mutation must invalidate COO's cached CSR view.

        The pre-fix code cached the ``tocsr()`` product unconditionally,
        so an SpMV after mutation silently used the old values.
        """
        base = sp.coo_matrix(np.array([[2.0, 0.0], [0.0, 3.0]]))
        mtx = Coo.from_scipy(ref, base)
        b = Dense(ref, np.ones((2, 1)))
        x = Dense.zeros(ref, (2, 1), np.float64)
        mtx.apply(b, x)  # populates the csr view cache
        np.testing.assert_array_equal(np.asarray(x), [[2.0], [3.0]])
        mtx.scale(10.0)  # public mutator: invalidates automatically
        mtx.apply(b, x)
        np.testing.assert_array_equal(np.asarray(x), [[20.0], [30.0]])

    def test_coo_raw_write_plus_mark_modified(self, ref):
        base = sp.coo_matrix(np.array([[2.0, 0.0], [0.0, 3.0]]))
        mtx = Coo.from_scipy(ref, base)
        b = Dense(ref, np.ones((2, 1)))
        x = Dense.zeros(ref, (2, 1), np.float64)
        mtx.apply(b, x)
        # the read-only property rejects the raw write...
        with pytest.raises(ValueError):
            mtx.values[:] = [5.0, 7.0]
        # ...the escape hatch allows it, and needs an explicit mark
        mtx.writable_values()[:] = [5.0, 7.0]
        mtx.mark_modified()
        mtx.apply(b, x)
        np.testing.assert_array_equal(np.asarray(x), [[5.0], [7.0]])

    def test_apply_output_is_invalidated(self, ref, small_sp):
        """apply() mutates x, so x's own derived caches must drop."""
        mtx = Csr.from_scipy(ref, small_sp)
        x = Dense.zeros(ref, (12, 1), np.float64)
        t1 = x.transpose()
        mtx.apply(Dense(ref, np.ones((12, 1))), x)
        assert x.transpose() is not t1
        np.testing.assert_array_equal(
            np.asarray(x.transpose()), np.asarray(x).T
        )

    def test_dense_mutators_invalidate(self, ref, rng):
        d = Dense(ref, rng.standard_normal((5, 2)))
        t1 = d.transpose()
        d.scale(2.0)
        t2 = d.transpose()
        assert t2 is not t1
        np.testing.assert_array_equal(np.asarray(t2), np.asarray(d).T)

    def test_hybrid_invalidation_cascades_to_parts(self, ref, small_sp):
        mtx = Hybrid.from_scipy(ref, small_sp)
        part_csr = mtx.ell_part.convert_to_csr()
        mtx.mark_modified()
        assert mtx.ell_part.convert_to_csr() is not part_csr


class TestChargesStillFire:
    def test_conversion_charges_per_call_despite_memo(self, ref, small_sp):
        """A cached conversion still costs what the perf model dictates."""
        mtx = Csr.from_scipy(ref, small_sp)
        t0 = ref.clock.now
        mtx.convert_to_coo()
        cold = ref.clock.now - t0
        t1 = ref.clock.now
        mtx.convert_to_coo()  # memo hit
        warm = ref.clock.now - t1
        assert cold > 0.0
        assert warm == pytest.approx(cold)

    def test_transpose_charges_per_call(self, ref, small_sp):
        mtx = Csr.from_scipy(ref, small_sp)
        t0 = ref.clock.now
        mtx.transpose()
        cold = ref.clock.now - t0
        t1 = ref.clock.now
        mtx.transpose()
        warm = ref.clock.now - t1
        assert cold > 0.0
        assert warm == pytest.approx(cold)


class TestPatternFingerprint:
    def test_structure_only(self, ref, small_sp):
        """Same pattern with different values shares one fingerprint."""
        a = Csr.from_scipy(ref, small_sp)
        other = small_sp.copy()
        other.data = other.data * 3.5 + 1.0
        b = Csr.from_scipy(ref, other)
        assert a.pattern_fingerprint() == b.pattern_fingerprint()

    def test_structure_changes_fingerprint(self, ref, small_sp, rng):
        a = Csr.from_scipy(ref, small_sp)
        different = sp.random(12, 12, density=0.3, format="csr",
                              random_state=rng)
        different.setdiag(4.0)
        b = Csr.from_scipy(ref, different.tocsr())
        assert a.pattern_fingerprint() != b.pattern_fingerprint()

    def test_shape_feeds_fingerprint(self, ref):
        """An empty 3x3 and an empty 4x4 must not collide."""
        a = Csr.from_scipy(ref, sp.csr_matrix((3, 3)))
        b = Csr.from_scipy(ref, sp.csr_matrix((4, 4)))
        assert a.pattern_fingerprint() != b.pattern_fingerprint()

    def test_memoized_until_mutation(self, ref, small_sp):
        mtx = Csr.from_scipy(ref, small_sp)
        f1 = mtx.pattern_fingerprint()
        assert mtx.pattern_fingerprint() is f1  # cache hit: same object
        mtx.mark_modified()
        f2 = mtx.pattern_fingerprint()
        assert f2 is not f1  # recomputed after the generation bump
        assert f2 == f1  # ... but the pattern did not actually change

    def test_value_mutation_keeps_fingerprint(self, ref, small_sp):
        mtx = Csr.from_scipy(ref, small_sp)
        before = mtx.pattern_fingerprint()
        mtx.scale(7.0)  # public mutator bumps data_version
        assert mtx.pattern_fingerprint() == before

    def test_hits_counted_as_format_kind(self, ref, small_sp):
        mtx = Csr.from_scipy(ref, small_sp)
        cachestats.reset()
        mtx.pattern_fingerprint()
        mtx.pattern_fingerprint()
        hits, misses = cachestats.counts("format")
        assert hits >= 1 and misses >= 1
