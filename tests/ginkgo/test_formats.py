"""Sparse format tests: CSR, COO, ELL, SELL-P, Hybrid, SparsityCsr,
Diagonal, Permutation — construction, SpMV, structure, conversions."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.ginkgo import BadDimension, Dim
from repro.ginkgo.exceptions import GinkgoError
from repro.ginkgo.matrix import (
    Coo,
    Csr,
    Dense,
    Diagonal,
    Ell,
    Hybrid,
    Permutation,
    Sellp,
    SparsityCsr,
)

ALL_FORMATS = [Csr, Coo, Ell, Sellp, Hybrid]


def _apply(matrix, b_np):
    x = Dense.zeros(matrix.executor, (matrix.size.rows, b_np.shape[1]),
                    b_np.dtype)
    matrix.apply(Dense(matrix.executor, b_np), x)
    return np.asarray(x)


class TestAllFormatsSpmv:
    @pytest.mark.parametrize("cls", ALL_FORMATS)
    def test_spmv_matches_scipy(self, cls, ref, general_small, rng):
        mat = cls.from_scipy(ref, general_small)
        b = rng.standard_normal((general_small.shape[1], 1))
        np.testing.assert_allclose(
            _apply(mat, b), general_small @ b, rtol=1e-12
        )

    @pytest.mark.parametrize("cls", ALL_FORMATS)
    def test_multi_rhs(self, cls, ref, general_small, rng):
        mat = cls.from_scipy(ref, general_small)
        b = rng.standard_normal((general_small.shape[1], 3))
        np.testing.assert_allclose(
            _apply(mat, b), general_small @ b, rtol=1e-12
        )

    @pytest.mark.parametrize("cls", ALL_FORMATS)
    def test_rectangular(self, cls, ref, rect_small, rng):
        mat = cls.from_scipy(ref, rect_small)
        b = rng.standard_normal((rect_small.shape[1], 1))
        np.testing.assert_allclose(_apply(mat, b), rect_small @ b, rtol=1e-12)

    @pytest.mark.parametrize("cls", ALL_FORMATS)
    def test_advanced_apply(self, cls, ref, general_small, rng):
        mat = cls.from_scipy(ref, general_small)
        b = rng.standard_normal((general_small.shape[1], 1))
        x0 = rng.standard_normal((general_small.shape[0], 1))
        x = Dense(ref, x0)
        mat.apply_advanced(2.0, Dense(ref, b), -0.5, x)
        np.testing.assert_allclose(
            np.asarray(x), 2.0 * (general_small @ b) - 0.5 * x0, rtol=1e-12
        )

    @pytest.mark.parametrize("cls", ALL_FORMATS)
    def test_fp32_and_fp16(self, cls, ref, general_small, rng):
        b = rng.standard_normal((general_small.shape[1], 1))
        expect = general_small @ b
        for dtype, tol in ((np.float32, 1e-5), (np.float16, 5e-2)):
            mat = cls.from_scipy(ref, general_small, value_dtype=dtype)
            got = _apply(mat, b.astype(dtype)).astype(np.float64)
            np.testing.assert_allclose(got, expect, rtol=tol, atol=tol)

    @pytest.mark.parametrize("cls", ALL_FORMATS)
    def test_nnz_and_density(self, cls, ref, general_small):
        mat = cls.from_scipy(ref, general_small)
        assert mat.nnz == general_small.nnz
        assert mat.density == pytest.approx(
            general_small.nnz / np.prod(general_small.shape)
        )

    @pytest.mark.parametrize("cls", ALL_FORMATS)
    def test_spmv_charges_clock(self, cls, ref, general_small, rng):
        mat = cls.from_scipy(ref, general_small)
        b = rng.standard_normal((general_small.shape[1], 1))
        before = ref.clock.now
        _apply(mat, b)
        assert ref.clock.now > before


class TestCsr:
    def test_invalid_row_ptrs(self, ref):
        with pytest.raises(BadDimension):
            Csr(ref, Dim(3, 3), [0, 1], [0], np.ones(1))

    def test_nnz_mismatch(self, ref):
        with pytest.raises(BadDimension):
            Csr(ref, Dim(2, 2), np.array([0, 1, 3], dtype=np.int32),
                np.array([0], dtype=np.int32), np.ones(1))

    def test_unknown_strategy(self, ref, general_small):
        with pytest.raises(GinkgoError, match="strategy"):
            Csr.from_scipy(ref, general_small, strategy="warp")

    def test_strategy_setter(self, ref, general_small):
        mat = Csr.from_scipy(ref, general_small)
        mat.strategy = "classical"
        assert mat.strategy == "classical"
        with pytest.raises(GinkgoError):
            mat.strategy = "nope"

    def test_transpose(self, ref, rect_small):
        mat = Csr.from_scipy(ref, rect_small)
        t = mat.transpose()
        assert t.size == Dim(25, 40)
        np.testing.assert_allclose(
            t.to_scipy().toarray(), rect_small.T.toarray()
        )

    def test_scale(self, ref, general_small, rng):
        mat = Csr.from_scipy(ref, general_small)
        mat.scale(2.0)
        b = rng.standard_normal((general_small.shape[1], 1))
        np.testing.assert_allclose(_apply(mat, b), 2.0 * (general_small @ b))

    def test_sorted_predicate_and_sort(self, ref):
        mat = Csr(
            ref, Dim(2, 3),
            np.array([0, 2, 3], dtype=np.int32),
            np.array([2, 0, 1], dtype=np.int32),
            np.array([1.0, 2.0, 3.0]),
        )
        assert not mat.is_sorted_by_column_index()
        mat.sort_by_column_index()
        assert mat.is_sorted_by_column_index()
        np.testing.assert_allclose(
            mat.to_scipy().toarray(), [[2.0, 0, 1.0], [0, 3.0, 0]]
        )

    def test_row_nnz_and_imbalance(self, ref):
        a = sp.csr_matrix(np.array([[1.0, 1, 1, 1], [1, 0, 0, 0],
                                    [0, 1, 0, 0], [0, 0, 1, 0]]))
        mat = Csr.from_scipy(ref, a)
        np.testing.assert_array_equal(mat.row_nnz(), [4, 1, 1, 1])
        assert mat.imbalance() == pytest.approx(4 / 1.75)

    def test_extract_diagonal(self, ref, general_small):
        mat = Csr.from_scipy(ref, general_small)
        diag = mat.extract_diagonal()
        np.testing.assert_allclose(
            np.asarray(diag.values), general_small.diagonal()
        )

    def test_index_dtypes(self, ref, general_small):
        for idx in (np.int32, np.int64):
            mat = Csr.from_scipy(ref, general_small, index_dtype=idx)
            assert mat.index_dtype == idx
            assert mat.row_ptrs.dtype == idx

    def test_astype(self, ref, general_small):
        mat = Csr.from_scipy(ref, general_small).astype(np.float32)
        assert mat.dtype == np.float32

    def test_copy_to_device(self, ref, cuda, general_small, rng):
        mat = Csr.from_scipy(ref, general_small)
        on_gpu = mat.copy_to(cuda)
        assert on_gpu.executor is cuda
        b = rng.standard_normal((general_small.shape[1], 1))
        x = Dense.zeros(cuda, (general_small.shape[0], 1), np.float64)
        on_gpu.apply(Dense(cuda, b), x)
        np.testing.assert_allclose(x.to_numpy(), general_small @ b)


class TestCoo:
    def test_triplet_length_mismatch(self, ref):
        with pytest.raises(BadDimension):
            Coo(ref, Dim(2, 2), np.array([0], dtype=np.int32),
                np.array([0, 1], dtype=np.int32), np.ones(2))

    def test_indices_out_of_range(self, ref):
        with pytest.raises(BadDimension):
            Coo(ref, Dim(2, 2), np.array([5], dtype=np.int32),
                np.array([0], dtype=np.int32), np.ones(1))

    def test_transpose_swaps_indices(self, ref, rect_small):
        mat = Coo.from_scipy(ref, rect_small)
        t = mat.transpose()
        np.testing.assert_allclose(
            t.to_scipy().toarray(), rect_small.T.toarray()
        )

    def test_convert_to_csr(self, ref, general_small):
        coo = Coo.from_scipy(ref, general_small)
        csr = coo.convert_to_csr()
        np.testing.assert_allclose(
            csr.to_scipy().toarray(), general_small.toarray()
        )


class TestEll:
    def test_padding_width(self, ref):
        a = sp.csr_matrix(np.array([[1.0, 2, 3], [4, 0, 0], [0, 5, 0]]))
        ell = Ell.from_scipy(ref, a)
        assert ell.num_stored_elements_per_row == 3
        assert ell.stored_elements == 9
        assert ell.nnz == 5

    def test_block_shape_validation(self, ref):
        with pytest.raises(BadDimension):
            Ell(ref, Dim(2, 2), np.zeros((2, 2), dtype=np.int32),
                np.zeros((3, 2)))

    def test_roundtrip_csr(self, ref, general_small):
        ell = Ell.from_scipy(ref, general_small)
        back = ell.convert_to_csr()
        np.testing.assert_allclose(
            back.to_scipy().toarray(), general_small.toarray()
        )


class TestSellp:
    def test_slice_structure(self, ref, general_small):
        mat = Sellp.from_scipy(ref, general_small, slice_size=8)
        assert mat.slice_size == 8
        expected_slices = -(-general_small.shape[0] // 8)
        assert mat.slice_lengths.size == expected_slices
        assert mat.slice_sets.size == expected_slices + 1
        assert mat.nnz == general_small.nnz

    def test_padding_bounded_by_slice_max(self, ref, general_small):
        mat = Sellp.from_scipy(ref, general_small, slice_size=4)
        # Stored slots = sum(slice_len * slice_size) == slice_sets[-1].
        assert mat.stored_elements == int(mat.slice_sets[-1])

    def test_roundtrip_csr(self, ref, general_small):
        mat = Sellp.from_scipy(ref, general_small, slice_size=16)
        np.testing.assert_allclose(
            mat.convert_to_csr().to_scipy().toarray(),
            general_small.toarray(),
        )

    def test_invalid_slice_size(self, ref, general_small):
        with pytest.raises(BadDimension):
            Sellp(ref, Dim(4, 4), 0, [], [0], [], [])


class TestHybrid:
    def test_split_conserves_nnz(self, ref, general_small):
        mat = Hybrid.from_scipy(ref, general_small, percent=0.5)
        assert mat.nnz == general_small.nnz
        assert mat.ell_part.nnz + mat.coo_part.nnz == general_small.nnz

    def test_percent_extremes(self, ref, general_small):
        all_ell = Hybrid.from_scipy(ref, general_small, percent=1.0)
        assert all_ell.coo_part.nnz == 0
        with pytest.raises(ValueError):
            Hybrid.from_scipy(ref, general_small, percent=1.5)

    def test_roundtrip_csr(self, ref, general_small):
        mat = Hybrid.from_scipy(ref, general_small, percent=0.6)
        np.testing.assert_allclose(
            mat.convert_to_csr().to_scipy().toarray(),
            general_small.toarray(),
        )


class TestSparsityCsr:
    def test_pattern_spmv_is_row_sum_gather(self, ref, general_small, rng):
        pattern = SparsityCsr.from_scipy(ref, general_small)
        b = rng.standard_normal((general_small.shape[1], 1))
        ones_matrix = general_small.copy()
        ones_matrix.data[:] = 1.0
        np.testing.assert_allclose(_apply(pattern, b), ones_matrix @ b)

    def test_uniform_value(self, ref, general_small, rng):
        pattern = SparsityCsr.from_scipy(ref, general_small, value=0.5)
        assert pattern.value == 0.5

    def test_materialise_to_csr(self, ref, general_small):
        pattern = SparsityCsr.from_scipy(ref, general_small)
        csr = pattern.convert_to_csr()
        assert csr.nnz == general_small.nnz
        assert set(np.unique(csr.values)) == {1.0}


class TestDiagonal:
    def test_apply(self, ref, rng):
        diag = np.array([1.0, 2.0, 3.0])
        op = Diagonal(ref, diag)
        b = rng.standard_normal((3, 2))
        np.testing.assert_allclose(_apply(op, b), diag[:, None] * b)

    def test_inverse_skips_zeros(self, ref):
        op = Diagonal(ref, np.array([2.0, 0.0, 4.0]))
        inv = op.inverse()
        np.testing.assert_allclose(np.asarray(inv.values), [0.5, 0.0, 0.25])

    def test_transpose_is_self(self, ref):
        op = Diagonal(ref, np.array([1.0, 2.0]))
        np.testing.assert_array_equal(
            np.asarray(op.transpose().values), np.asarray(op.values)
        )

    def test_nnz_counts_nonzeros(self, ref):
        assert Diagonal(ref, np.array([1.0, 0.0, 2.0])).nnz == 2


class TestPermutation:
    def test_apply_permutes_rows(self, ref):
        perm = Permutation(ref, [2, 0, 1])
        b = Dense(ref, np.array([[10.0], [20.0], [30.0]]))
        x = Dense.zeros(ref, (3, 1), np.float64)
        perm.apply(b, x)
        np.testing.assert_array_equal(
            np.asarray(x).ravel(), [30.0, 10.0, 20.0]
        )

    def test_inverse_roundtrip(self, ref, rng):
        order = rng.permutation(10)
        perm = Permutation(ref, order)
        inv = perm.inverse()
        b = Dense(ref, rng.standard_normal((10, 1)))
        mid = Dense.zeros(ref, (10, 1), np.float64)
        out = Dense.zeros(ref, (10, 1), np.float64)
        perm.apply(b, mid)
        inv.apply(mid, out)
        np.testing.assert_allclose(np.asarray(out), np.asarray(b))

    def test_invalid_permutation_rejected(self, ref):
        with pytest.raises(BadDimension):
            Permutation(ref, [0, 0, 1])
