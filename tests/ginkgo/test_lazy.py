"""Lazy expression recording, fusion accounting, and bit-identity."""

import numpy as np
import pytest
import scipy.sparse as sp

import repro as pg
from repro.ginkgo import lazy
from repro.ginkgo.exceptions import DimensionMismatch, ExecutorMismatch
from repro.ginkgo.matrix import Csr, Dense
from repro.ginkgo.preconditioner import Jacobi


@pytest.fixture
def small_sp(rng):
    mat = sp.random(16, 16, density=0.35, format="csr", random_state=rng)
    mat.setdiag(5.0)
    return mat.tocsr()


def _vec(dev, rng, rows, cols=1):
    return Dense(dev, rng.standard_normal((rows, cols)))


class TestRecording:
    def test_matmul_is_eager_outside_deferred(self, ref, rng, small_sp):
        mtx = Csr.from_scipy(ref, small_sp)
        x = _vec(ref, rng, 16)
        out = mtx @ x
        assert isinstance(out, Dense)
        np.testing.assert_array_equal(
            np.asarray(out), small_sp @ np.asarray(x)
        )

    def test_matmul_records_inside_deferred(self, ref, rng, small_sp):
        mtx = Csr.from_scipy(ref, small_sp)
        x = _vec(ref, rng, 16)
        with pg.deferred() as trace:
            expr = mtx @ x
            assert isinstance(expr, lazy.LazyExpr)
            assert lazy.is_recording()
            assert expr.shape == (16, 1)
            # nothing executed yet, and no root registered either
            assert trace.pending == 0
        assert not lazy.is_recording()

    def test_operator_expressions_build_a_dag(self, ref, rng, small_sp):
        mtx = Csr.from_scipy(ref, small_sp)
        x = _vec(ref, rng, 16)
        y = _vec(ref, rng, 16)
        with pg.deferred():
            expr = 2.0 * (mtx @ x) + 0.5 * y
            # apply + 2 scales + add + 2 leaves
            assert expr.num_nodes == 6
            assert expr.kind == "add"

    def test_shape_and_executor_validation(self, ref, omp, rng, small_sp):
        mtx = Csr.from_scipy(ref, small_sp)
        bad = _vec(ref, rng, 7)
        other_exec = _vec(omp, rng, 16)
        with pg.deferred():
            with pytest.raises(DimensionMismatch):
                mtx @ bad
            with pytest.raises(ExecutorMismatch):
                mtx @ other_exec
            with pytest.raises(DimensionMismatch):
                _vec(ref, rng, 16) + _vec(ref, rng, 7)

    def test_exception_discards_pending_roots(self, ref, rng, small_sp):
        mtx = Csr.from_scipy(ref, small_sp)
        x = _vec(ref, rng, 16)
        out = Dense.zeros(ref, (16, 1), np.float64)
        with pytest.raises(RuntimeError):
            with pg.deferred() as trace:
                (mtx @ x).into(out)
                raise RuntimeError("abort")
        assert trace.regions == 0
        np.testing.assert_array_equal(np.asarray(out), 0.0)


class TestEquivalence:
    """Flushed results must be bit-identical to the eager operators."""

    def test_spmv(self, ref, rng, small_sp):
        mtx = Csr.from_scipy(ref, small_sp)
        x = _vec(ref, rng, 16)
        eager = (mtx @ x).to_numpy()
        with pg.deferred():
            fused = (mtx @ x).to_numpy()
        assert eager.tobytes() == fused.tobytes()

    def test_axpby_expression(self, ref, rng, small_sp):
        mtx = Csr.from_scipy(ref, small_sp)
        x = _vec(ref, rng, 16)
        y = _vec(ref, rng, 16)
        eager = (2.0 * (mtx @ x) + 0.5 * y).to_numpy()
        with pg.deferred():
            fused = (2.0 * (mtx @ x) + 0.5 * y).to_numpy()
        assert eager.tobytes() == fused.tobytes()

    def test_sub_and_neg(self, ref, rng):
        a = _vec(ref, rng, 12)
        b = _vec(ref, rng, 12)
        eager = (a - 3.0 * b).to_numpy()
        with pg.deferred():
            fused = (a - 3.0 * b).to_numpy()
        assert eager.tobytes() == fused.tobytes()
        with pg.deferred():
            neg = (-a).to_numpy()
        assert neg.tobytes() == (-a.to_numpy()).tobytes()

    def test_scale_special_cases(self, ref, rng):
        """0.0 and 1.0 take Dense.scale's special paths — bits must match."""
        a = _vec(ref, rng, 12)
        b = _vec(ref, rng, 12)
        for coef in (0.0, 1.0, -1.0, 2.5):
            eager = (coef * a + b).to_numpy()
            with pg.deferred():
                fused = (coef * a + b).to_numpy()
            assert eager.tobytes() == fused.tobytes(), coef

    def test_preconditioner_chain(self, ref, rng, small_sp):
        mtx = Csr.from_scipy(ref, small_sp)
        M = Jacobi(ref).generate(mtx)
        x = _vec(ref, rng, 16)
        mid = mtx @ x
        eager_out = Dense.zeros(ref, (16, 1), np.float64)
        M.apply(mid, eager_out)
        with pg.deferred() as trace:
            fused = (M @ (mtx @ x)).to_numpy()
        assert eager_out.to_numpy().tobytes() == fused.tobytes()
        assert trace.regions == 1
        assert trace.ops_replaced == 2

    def test_multi_rhs(self, ref, rng, small_sp):
        mtx = Csr.from_scipy(ref, small_sp)
        X = _vec(ref, rng, 16, cols=4)
        Y = _vec(ref, rng, 16, cols=4)
        eager = (1.5 * (mtx @ X) + Y).to_numpy()
        with pg.deferred():
            fused = (1.5 * (mtx @ X) + Y).to_numpy()
        assert eager.shape == (16, 4)
        assert eager.tobytes() == fused.tobytes()

    def test_tensor_operands_record(self, ref, rng, small_sp):
        mtx = Csr.from_scipy(ref, small_sp)
        x = pg.as_tensor(rng.standard_normal((16, 1)), device=ref)
        y = pg.as_tensor(rng.standard_normal((16, 1)), device=ref)
        eager = (mtx @ x + 2.0 * y).numpy()
        with pg.deferred():
            expr = mtx @ x + 2.0 * y
            assert isinstance(expr, lazy.LazyExpr)
            fused = expr.tensor()
        assert eager.tobytes() == fused.numpy().tobytes()

    def test_into_destination(self, ref, rng, small_sp):
        mtx = Csr.from_scipy(ref, small_sp)
        x = _vec(ref, rng, 16)
        y = _vec(ref, rng, 16)
        eager = (0.5 * (mtx @ x) + y).to_numpy()
        out = Dense.zeros(ref, (16, 1), np.float64)
        with pg.deferred() as trace:
            (0.5 * (mtx @ x) + y).into(out)
            assert trace.pending == 1
            np.testing.assert_array_equal(np.asarray(out), 0.0)  # deferred
        assert trace.pending == 0
        assert out.to_numpy().tobytes() == eager.tobytes()

    def test_into_invalidates_destination_caches(self, ref, rng, small_sp):
        mtx = Csr.from_scipy(ref, small_sp)
        x = _vec(ref, rng, 16)
        out = Dense.zeros(ref, (16, 1), np.float64)
        t1 = out.transpose()
        with pg.deferred():
            (mtx @ x).into(out)
        assert out.transpose() is not t1


class TestFusionAccounting:
    def test_one_region_one_dispatch_resolve(self, ref, rng, small_sp):
        from repro.ginkgo import cachestats

        mtx = Csr.from_scipy(ref, small_sp)
        x = _vec(ref, rng, 16)
        y = _vec(ref, rng, 16)
        out = Dense.zeros(ref, (16, 1), np.float64)
        with pg.deferred() as trace:
            (2.0 * (mtx @ x) + 0.5 * y).into(out)
            cachestats.reset()
            trace.flush()
        hits, misses = cachestats.counts("dispatch")
        assert hits + misses == 1  # one fused_region lookup for 4 ops
        assert trace.regions == 1
        assert trace.ops_replaced == 4

    def test_fused_region_cheaper_than_eager(self, ref, rng, small_sp):
        mtx = Csr.from_scipy(ref, small_sp)
        x = _vec(ref, rng, 16)
        y = _vec(ref, rng, 16)
        t0 = ref.clock.now
        eager = 2.0 * (mtx @ x) + 0.5 * y
        eager_cost = ref.clock.now - t0
        t1 = ref.clock.now
        with pg.deferred():
            fused = (2.0 * (mtx @ x) + 0.5 * y).evaluate()
        fused_cost = ref.clock.now - t1
        assert fused_cost < eager_cost
        assert eager.to_numpy().tobytes() == fused.to_numpy().tobytes()

    def test_shared_subexpression_runs_once(self, ref, rng, small_sp):
        mtx = Csr.from_scipy(ref, small_sp)
        x = _vec(ref, rng, 16)
        r = Dense.zeros(ref, (16, 1), np.float64)
        s = Dense.zeros(ref, (16, 1), np.float64)
        with pg.deferred() as trace:
            q = mtx @ x  # consumed by both roots
            (2.0 * q).into(r)
            (0.5 * q).into(s)
        assert trace.regions == 2
        base = (small_sp @ np.asarray(x))
        np.testing.assert_array_equal(np.asarray(r), 2.0 * base)
        np.testing.assert_array_equal(np.asarray(s), 0.5 * base)

    def test_fused_region_span_in_trace(self, ref, rng, small_sp):
        mtx = Csr.from_scipy(ref, small_sp)
        x = _vec(ref, rng, 16)
        y = _vec(ref, rng, 16)
        with pg.profile(ref) as prof:
            with pg.deferred():
                (2.0 * (mtx @ x) + y).evaluate()
        table = prof.attribution()
        assert table.fused_regions == 1
        assert table.fused_ops_replaced == 3

    def test_workspace_pool_reused_across_flushes(self, ref, rng, small_sp):
        from repro.ginkgo import cachestats

        mtx = Csr.from_scipy(ref, small_sp)
        x = _vec(ref, rng, 16)
        with pg.deferred() as trace:
            (2.0 * (mtx @ x) + x).evaluate()
            cachestats.reset()
            x.mark_modified()  # force a recompute on the second flush
            (2.0 * (mtx @ x) + x).evaluate()
        hits, _ = cachestats.counts("workspace")
        assert hits >= 1
        assert trace.flushes == 2


class TestInvalidation:
    def test_mutation_between_record_and_flush_recomputes(
        self, ref, rng, small_sp
    ):
        mtx = Csr.from_scipy(ref, small_sp)
        x = Dense(ref, np.ones((16, 1)))
        out = Dense.zeros(ref, (16, 1), np.float64)
        with pg.deferred() as trace:
            (mtx @ x).into(out)
            x.scale(3.0)  # public mutator: bumps data_version
        # flush read the LIVE data, not a record-time snapshot
        np.testing.assert_array_equal(
            np.asarray(out), small_sp @ (3.0 * np.ones((16, 1)))
        )
        assert trace.recomputed >= 1

    def test_memoized_evaluate_invalidated_by_mutation(
        self, ref, rng, small_sp
    ):
        mtx = Csr.from_scipy(ref, small_sp)
        x = Dense(ref, np.ones((16, 1)))
        with pg.deferred():
            expr = mtx @ x
            r1 = expr.evaluate()
            assert expr.evaluate() is r1  # cached while versions match
            x.scale(2.0)
            r2 = expr.evaluate()
        assert r2 is not r1
        np.testing.assert_array_equal(
            np.asarray(r2), small_sp @ (2.0 * np.ones((16, 1)))
        )

    def test_matrix_mutation_invalidates(self, ref, rng, small_sp):
        mtx = Csr.from_scipy(ref, small_sp)
        x = Dense(ref, np.ones((16, 1)))
        with pg.deferred():
            expr = mtx @ x
            expr.evaluate()
            mtx.scale(10.0)
            fresh = expr.evaluate().to_numpy()
        np.testing.assert_allclose(
            fresh, (10.0 * small_sp) @ np.ones((16, 1))
        )


class TestImmediatePath:
    def test_evaluate_outside_deferred(self, ref, rng, small_sp):
        """A LazyExpr escaping its region still evaluates correctly."""
        mtx = Csr.from_scipy(ref, small_sp)
        x = _vec(ref, rng, 16)
        with pg.deferred():
            expr = 2.0 * (mtx @ x)
        # the region flushed on exit with no roots; evaluate now
        out = expr.to_numpy()
        np.testing.assert_array_equal(out, 2.0 * (small_sp @ np.asarray(x)))

    def test_into_outside_deferred_runs_immediately(self, ref, rng, small_sp):
        mtx = Csr.from_scipy(ref, small_sp)
        x = _vec(ref, rng, 16)
        out = Dense.zeros(ref, (16, 1), np.float64)
        with pg.deferred():
            expr = mtx @ x
        expr.into(out)  # no active trace: immediate
        np.testing.assert_array_equal(
            np.asarray(out), small_sp @ np.asarray(x)
        )
