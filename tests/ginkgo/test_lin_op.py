"""LinOp abstraction tests: validation, logging, compositions."""

import numpy as np
import pytest

from repro.ginkgo import (
    Combination,
    Composition,
    DimensionMismatch,
    ExecutorMismatch,
    Identity,
    Perturbation,
)
from repro.ginkgo.log import RecordLogger
from repro.ginkgo.matrix import Csr, Dense


class TestValidation:
    def test_apply_checks_b_rows(self, ref, rect_small):
        op = Csr.from_scipy(ref, rect_small)  # 40 x 25
        b = Dense.zeros(ref, (40, 1), np.float64)
        x = Dense.zeros(ref, (40, 1), np.float64)
        with pytest.raises(DimensionMismatch, match="b with 25 rows"):
            op.apply(b, x)

    def test_apply_checks_x_rows(self, ref, rect_small):
        op = Csr.from_scipy(ref, rect_small)
        b = Dense.zeros(ref, (25, 1), np.float64)
        x = Dense.zeros(ref, (25, 1), np.float64)
        with pytest.raises(DimensionMismatch, match="x with 40 rows"):
            op.apply(b, x)

    def test_apply_checks_column_agreement(self, ref, rect_small):
        op = Csr.from_scipy(ref, rect_small)
        b = Dense.zeros(ref, (25, 2), np.float64)
        x = Dense.zeros(ref, (40, 3), np.float64)
        with pytest.raises(DimensionMismatch, match="columns"):
            op.apply(b, x)

    def test_apply_checks_executors(self, ref, cuda, general_small):
        op = Csr.from_scipy(ref, general_small)
        b = Dense.zeros(cuda, (50, 1), np.float64)
        x = Dense.zeros(ref, (50, 1), np.float64)
        with pytest.raises(ExecutorMismatch):
            op.apply(b, x)

    def test_shape_alias(self, ref, rect_small):
        assert Csr.from_scipy(ref, rect_small).shape == (40, 25)


class TestLogging:
    def test_apply_events(self, ref, general_small, rng):
        op = Csr.from_scipy(ref, general_small)
        logger = RecordLogger()
        op.add_logger(logger)
        b = Dense(ref, rng.standard_normal((50, 1)))
        x = Dense.zeros(ref, (50, 1), np.float64)
        op.apply(b, x)
        assert logger.count("apply_started") == 1
        assert logger.count("apply_completed") == 1

    def test_remove_logger(self, ref, general_small, rng):
        op = Csr.from_scipy(ref, general_small)
        logger = RecordLogger()
        op.add_logger(logger)
        op.remove_logger(logger)
        assert logger not in op.loggers
        b = Dense(ref, rng.standard_normal((50, 1)))
        op.apply(b, Dense.zeros(ref, (50, 1), np.float64))
        assert logger.count("apply_started") == 0


class TestIdentity:
    def test_apply_copies(self, ref, rng):
        op = Identity(ref, 5)
        b = Dense(ref, rng.standard_normal((5, 1)))
        x = Dense.zeros(ref, (5, 1), np.float64)
        op.apply(b, x)
        np.testing.assert_array_equal(np.asarray(x), np.asarray(b))

    def test_advanced_apply(self, ref, rng):
        op = Identity(ref, 5)
        b_np = rng.standard_normal((5, 1))
        x_np = rng.standard_normal((5, 1))
        x = Dense(ref, x_np)
        op.apply_advanced(2.0, Dense(ref, b_np), 3.0, x)
        np.testing.assert_allclose(np.asarray(x), 2 * b_np + 3 * x_np)

    def test_rejects_rectangular(self, ref):
        with pytest.raises(DimensionMismatch):
            Identity(ref, (3, 4))


class TestComposition:
    def test_two_operator_product(self, ref, rng):
        a = Dense(ref, rng.standard_normal((4, 3)))
        b = Dense(ref, rng.standard_normal((3, 5)))
        comp = Composition(a, b)
        assert comp.size == (4, 5)
        v = rng.standard_normal((5, 1))
        x = Dense.zeros(ref, (4, 1), np.float64)
        comp.apply(Dense(ref, v), x)
        np.testing.assert_allclose(
            np.asarray(x), np.asarray(a) @ (np.asarray(b) @ v)
        )

    def test_three_operator_product(self, ref, rng):
        mats = [rng.standard_normal((4, 4)) for _ in range(3)]
        comp = Composition(*[Dense(ref, m) for m in mats])
        v = rng.standard_normal((4, 1))
        x = Dense.zeros(ref, (4, 1), np.float64)
        comp.apply(Dense(ref, v), x)
        np.testing.assert_allclose(
            np.asarray(x), mats[0] @ mats[1] @ mats[2] @ v
        )

    def test_dimension_mismatch_rejected(self, ref, rng):
        a = Dense(ref, rng.standard_normal((4, 3)))
        b = Dense(ref, rng.standard_normal((5, 5)))
        with pytest.raises(Exception):
            Composition(a, b)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Composition()

    def test_advanced_apply(self, ref, rng):
        a = Dense(ref, rng.standard_normal((3, 3)))
        b = Dense(ref, rng.standard_normal((3, 3)))
        comp = Composition(a, b)
        v = rng.standard_normal((3, 1))
        x0 = rng.standard_normal((3, 1))
        x = Dense(ref, x0)
        comp.apply_advanced(2.0, Dense(ref, v), 0.5, x)
        np.testing.assert_allclose(
            np.asarray(x),
            2.0 * (np.asarray(a) @ np.asarray(b) @ v) + 0.5 * x0,
        )


class TestCombination:
    def test_linear_combination(self, ref, rng):
        a_np = rng.standard_normal((4, 4))
        b_np = rng.standard_normal((4, 4))
        comb = Combination([2.0, -1.0], [Dense(ref, a_np), Dense(ref, b_np)])
        v = rng.standard_normal((4, 1))
        x = Dense.zeros(ref, (4, 1), np.float64)
        comb.apply(Dense(ref, v), x)
        np.testing.assert_allclose(
            np.asarray(x), 2.0 * (a_np @ v) - (b_np @ v)
        )

    def test_coefficient_count_mismatch(self, ref, rng):
        op = Dense(ref, rng.standard_normal((3, 3)))
        with pytest.raises(ValueError):
            Combination([1.0, 2.0], [op])

    def test_size_mismatch(self, ref, rng):
        a = Dense(ref, rng.standard_normal((3, 3)))
        b = Dense(ref, rng.standard_normal((4, 4)))
        with pytest.raises(DimensionMismatch):
            Combination([1.0, 1.0], [a, b])


class TestPerturbation:
    def test_rank_one_update(self, ref, rng):
        n, k = 6, 2
        basis_np = rng.standard_normal((n, k))
        proj_np = rng.standard_normal((k, n))
        op = Perturbation(0.5, Dense(ref, basis_np), Dense(ref, proj_np))
        v = rng.standard_normal((n, 1))
        x = Dense.zeros(ref, (n, 1), np.float64)
        op.apply(Dense(ref, v), x)
        np.testing.assert_allclose(
            np.asarray(x), v + 0.5 * basis_np @ (proj_np @ v)
        )

    def test_shape_validation(self, ref, rng):
        basis = Dense(ref, rng.standard_normal((6, 2)))
        bad_proj = Dense(ref, rng.standard_normal((3, 6)))
        with pytest.raises(DimensionMismatch):
            Perturbation(1.0, basis, bad_proj)
