"""Mixed-precision preconditioning: byte-identity, convergence, no leaks.

Covers the ISSUE-10 acceptance criteria:

* the default uniform-precision path is byte-identical to the pre-PR
  residual histories (recorded in ``tests/baselines``) across all 10
  scalar solvers;
* float32-storage preconditioners converge within a pinned iteration
  bound of the uniform solves;
* a float32 system no longer produces any float64 preconditioner
  storage, apply output, or kernel charge;
* mixed applies route through the mixed-suffix binding symbols, and the
  config/dispatch layers accept every value-type spelling end-to-end.
"""

from __future__ import annotations

import importlib
import importlib.util
import json
import struct
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.bindings import dispatch
from repro.ginkgo.accessor import VALUE_SUFFIX_ALIASES
from repro.ginkgo.executor import ReferenceExecutor
from repro.ginkgo.log import ConvergenceLogger, ProfilerHook
from repro.ginkgo.matrix import Csr, Dense
from repro.ginkgo.preconditioner import Ic, Ilu, Isai, Jacobi
from repro.ginkgo.solver import CbGmres, Cg, Gmres
from repro.ginkgo.stop import Iteration, ResidualNorm
from repro.perfmodel import spmv_cost, trsv_cost

BASELINE_DIR = Path(__file__).resolve().parent.parent / "baselines"

_spec = importlib.util.spec_from_file_location(
    "record_uniform_histories",
    BASELINE_DIR / "record_uniform_histories.py",
)
recorder = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("record_uniform_histories", recorder)
_spec.loader.exec_module(recorder)

BASELINES = json.loads(
    (BASELINE_DIR / "uniform_float64_histories.json").read_text()
)

#: Reduced-precision storage must not move iteration counts beyond this.
ITER_TOLERANCE = 2


# ----------------------------------------------------------------------
# (a) uniform float64 solves: byte-identical to the pre-PR baselines
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "name, solver_cls, params, matrix_kind, precond_spec",
    recorder.CASES,
    ids=[case[0] for case in recorder.CASES],
)
def test_uniform_float64_byte_identical(
    name, solver_cls, params, matrix_kind, precond_spec
):
    result = recorder.run_case(solver_cls, params, matrix_kind, precond_spec)
    baseline = BASELINES[name]
    assert result["num_iterations"] == baseline["num_iterations"]
    assert result["converged"] == baseline["converged"]
    assert result["residual_history_hex"] == baseline["residual_history_hex"]
    assert result["solution_hex"] == baseline["solution_hex"]


# ----------------------------------------------------------------------
# (b) float32 storage converges within the pinned iteration bound
# ----------------------------------------------------------------------
MIXED_CASES = [
    ("cg/jacobi", Cg, "spd", Jacobi, {}),
    ("cg/jacobi4", Cg, "spd", Jacobi, {"max_block_size": 4}),
    ("cg/ic", Cg, "spd", Ic, {}),
    ("cg/isai", Cg, "spd", Isai, {}),
    ("gmres/ilu", Gmres, "general", Ilu, {}),
    ("gmres/parilu", Gmres, "general", Ilu, {"algorithm": "parilu"}),
]


def _solve(solver_cls, matrix_kind, precond_cls, precond_params, storage):
    exec_ = ReferenceExecutor.create(noisy=False)
    scipy_mat = (
        recorder.spd_matrix()
        if matrix_kind == "spd"
        else recorder.general_matrix()
    )
    mtx = Csr.from_scipy(exec_, scipy_mat)
    params = dict(precond_params)
    if storage is not None:
        params["storage_precision"] = storage
    solver = solver_cls(
        exec_,
        criteria=Iteration(300) | ResidualNorm(1e-10),
        preconditioner=precond_cls(exec_, **params),
    ).generate(mtx)
    n = scipy_mat.shape[0]
    b = Dense.full(exec_, (n, 1), 1.0, np.float64)
    x = Dense.zeros(exec_, (n, 1), np.float64)
    solver.apply(b, x)
    return solver


@pytest.mark.parametrize(
    "name, solver_cls, matrix_kind, precond_cls, precond_params",
    MIXED_CASES,
    ids=[case[0] for case in MIXED_CASES],
)
def test_float32_storage_iterations_pinned(
    name, solver_cls, matrix_kind, precond_cls, precond_params
):
    uniform = _solve(solver_cls, matrix_kind, precond_cls, precond_params, None)
    mixed = _solve(
        solver_cls, matrix_kind, precond_cls, precond_params, "float"
    )
    assert uniform.converged and mixed.converged
    assert (
        abs(mixed.num_iterations - uniform.num_iterations) <= ITER_TOLERANCE
    )


# ----------------------------------------------------------------------
# float32 systems: no float64 storage, output, or kernel charge
# ----------------------------------------------------------------------
def _float32_system(exec_):
    mtx = Csr.from_scipy(
        exec_, recorder.spd_matrix().astype(np.float32)
    )
    n = mtx.size[0]
    b = Dense.full(exec_, (n, 1), 1.0, np.float32)
    x = Dense.zeros(exec_, (n, 1), np.float32)
    return mtx, b, x


def test_float32_jacobi_no_float64_leak():
    exec_ = ReferenceExecutor.create(noisy=False)
    mtx, b, x = _float32_system(exec_)
    op = Jacobi(exec_).generate(mtx)
    assert set(op.storage_dtypes) == {np.dtype(np.float32)}
    exec_.clock.enable_event_log()
    op.apply(b, x)
    assert x.to_numpy().dtype == np.float32
    n = mtx.size[0]
    # The apply charge moved float32 bytes, not float64 bytes.
    apply_event = exec_.clock.events[-1]
    assert apply_event.bytes == spmv_cost(
        "csr", n, n, n, 4, mtx.index_bytes
    ).bytes


def test_float32_block_jacobi_output_dtype():
    exec_ = ReferenceExecutor.create(noisy=False)
    mtx, b, x = _float32_system(exec_)
    op = Jacobi(exec_, max_block_size=4).generate(mtx)
    assert set(op.storage_dtypes) == {np.dtype(np.float32)}
    op.apply(b, x)
    # The pre-accessor code allocated the block output float64.
    assert x.to_numpy().dtype == np.float32


def test_float32_ilu_factors_and_trsv_charge():
    exec_ = ReferenceExecutor.create(noisy=False)
    mtx, b, x = _float32_system(exec_)
    op = Ilu(exec_).generate(mtx)
    factorization = op.factorization
    assert factorization.l_factor.dtype == np.float32
    assert factorization.u_factor.dtype == np.float32
    exec_.clock.enable_event_log()
    op.apply(b, x)
    assert x.to_numpy().dtype == np.float32
    trsv_events = [e for e in exec_.clock.events if e.name == "trsv"]
    assert trsv_events
    n = mtx.size[0]
    for event, factor in zip(
        trsv_events, (factorization.u_factor, factorization.l_factor)
    ):
        assert event.bytes == trsv_cost(
            n, factor.nnz, 4, factor.index_bytes
        ).bytes


def test_float32_ic_and_isai_storage():
    exec_ = ReferenceExecutor.create(noisy=False)
    mtx, b, x = _float32_system(exec_)
    ic_op = Ic(exec_).generate(mtx)
    assert ic_op.factorization.l_factor.dtype == np.float32
    isai_op = Isai(exec_).generate(mtx)
    assert isai_op.approximate_inverse.dtype == np.float32
    isai_op.apply(b, x)
    assert x.to_numpy().dtype == np.float32


# ----------------------------------------------------------------------
# mixed binding symbols: registered, resolved, and attributed
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "op", ["jacobi_apply", "trsv_apply", "isai_apply"]
)
@pytest.mark.parametrize(
    "pair", [("double", "float"), ("double", "half"), ("float", "half")]
)
def test_mixed_symbols_registered(op, pair):
    working, storage = pair
    symbol = dispatch.symbol_for(op, (working, storage))
    assert symbol == f"{op}_{working}_{storage}"
    runner = dispatch.resolve(op, (working, storage))
    assert runner(None, lambda: "ran") == "ran"


def test_uniform_tuple_collapses_to_plain_suffix():
    assert dispatch.symbol_for("jacobi_apply", ("double", "double")) == (
        "jacobi_apply_double"
    )
    assert dispatch.symbol_for("jacobi_apply", ("double", None)) == (
        "jacobi_apply_double"
    )


def test_mixed_jacobi_apply_routes_mixed_symbol():
    exec_ = ReferenceExecutor.create(noisy=False)
    mtx = Csr.from_scipy(exec_, recorder.spd_matrix())
    op = Jacobi(exec_, storage_precision="float").generate(mtx)
    assert op.is_mixed
    n = mtx.size[0]
    b = Dense.full(exec_, (n, 1), 1.0, np.float64)
    x = Dense.zeros(exec_, (n, 1), np.float64)
    prof = ProfilerHook()
    prof.attach(exec_)
    op.apply(b, x)
    prof.detach(exec_)
    prof.close()
    labels = set()

    def walk(span):
        if span.category == "binding":
            labels.add(span.name)
        for child in span.children:
            walk(child)

    for root in prof.trace.roots:
        walk(root)
    assert "jacobi_apply_double_float" in labels
    # Output stays at the solver's working precision.
    assert x.to_numpy().dtype == np.float64


def test_uniform_jacobi_apply_crosses_no_mixed_symbol():
    exec_ = ReferenceExecutor.create(noisy=False)
    mtx = Csr.from_scipy(exec_, recorder.spd_matrix())
    op = Jacobi(exec_).generate(mtx)
    assert not op.is_mixed
    before = dispatch.cache_size()
    n = mtx.size[0]
    b = Dense.full(exec_, (n, 1), 1.0, np.float64)
    x = Dense.zeros(exec_, (n, 1), np.float64)
    op.apply(b, x)
    # The uniform path performs no extra dispatch resolution at all.
    assert dispatch.cache_size() == before


# ----------------------------------------------------------------------
# adaptive per-block storage selection
# ----------------------------------------------------------------------
def test_adaptive_jacobi_picks_narrow_storage():
    exec_ = ReferenceExecutor.create(noisy=False)
    mtx = Csr.from_scipy(exec_, recorder.spd_matrix())
    op = Jacobi(
        exec_, max_block_size=4, storage_precision="adaptive"
    ).generate(mtx)
    # The shifted tridiagonal's blocks are well conditioned: every block
    # lands below the working precision.
    assert op.is_mixed
    assert all(
        dt.itemsize < np.dtype(np.float64).itemsize
        for dt in op.storage_dtypes
    )


def test_adaptive_jacobi_capped_at_float32_working():
    exec_ = ReferenceExecutor.create(noisy=False)
    mtx, _, _ = _float32_system(exec_)
    op = Jacobi(
        exec_, max_block_size=4, storage_precision="adaptive"
    ).generate(mtx)
    assert all(
        dt.itemsize <= np.dtype(np.float32).itemsize
        for dt in op.storage_dtypes
    )


# ----------------------------------------------------------------------
# value-type aliases: config -> dispatch, one table, every spelling
# ----------------------------------------------------------------------
@pytest.mark.parametrize("spelling", sorted(VALUE_SUFFIX_ALIASES))
def test_alias_accepted_by_config_and_dispatch(spelling):
    # The config package re-exports `validate` the function, shadowing
    # the module; import the module explicitly.
    validate_mod = importlib.import_module("repro.ginkgo.config.validate")
    assert spelling in validate_mod.VALUE_TYPES
    validate_mod.validate(
        {
            "type": "solver::Cg",
            "value_type": spelling,
            "criteria": [{"type": "stop::Iteration", "max_iters": 1}],
        }
    )
    # A spelling the config layer accepts must resolve at dispatch too.
    symbol = dispatch.symbol_for("axpy", spelling)
    assert symbol.startswith("axpy_")
    assert dispatch.resolve("axpy", spelling) is not None


@pytest.mark.parametrize("spelling", sorted(VALUE_SUFFIX_ALIASES))
def test_alias_accepted_as_storage_precision(spelling):
    validate_mod = importlib.import_module("repro.ginkgo.config.validate")
    validate_mod.validate(
        {
            "type": "solver::Cg",
            "criteria": [{"type": "stop::Iteration", "max_iters": 1}],
            "preconditioner": {
                "type": "jacobi",
                "storage_precision": spelling,
            },
        }
    )


# ----------------------------------------------------------------------
# CB-GMRES host bookkeeping at the working precision
# ----------------------------------------------------------------------
#: Pre-recorded float32 CB-GMRES residual history (Jacobi, spd matrix,
#: Iteration(300) | ResidualNorm(1e-6)).  Every value is exactly
#: float32-representable — the host bookkeeping (Hessenberg, Givens, g)
#: runs at the working precision instead of leaking float64.
CB_GMRES_FLOAT32_HISTORY_HEX = [
    "da4e4fb1defb1e40",
    "0000002030ccc53f",
    "000000c02e49a53f",
    "00000040fe8e863f",
    "000000202520683f",
    "000000e0b0d2493f",
    "000000a0b8a32b3f",
    "00000060a5940d3f",
    "0000000085a7ef3e",
    "000000208befd03e",
]


def test_cb_gmres_float32_history_pinned():
    exec_ = ReferenceExecutor.create(noisy=False)
    mtx = Csr.from_scipy(exec_, recorder.spd_matrix().astype(np.float32))
    solver = CbGmres(
        exec_,
        criteria=Iteration(300) | ResidualNorm(1e-6),
        preconditioner=Jacobi(exec_),
    ).generate(mtx)
    logger = ConvergenceLogger()
    solver.add_logger(logger)
    n = mtx.size[0]
    b = Dense.full(exec_, (n, 1), 1.0, np.float32)
    x = Dense.zeros(exec_, (n, 1), np.float32)
    solver.apply(b, x)
    assert solver.converged
    assert x.to_numpy().dtype == np.float32
    history = [
        struct.pack("<d", float(v)).hex() for v in logger.residual_norms
    ]
    assert history == CB_GMRES_FLOAT32_HISTORY_HEX


def test_cb_gmres_float32_history_is_float32_representable():
    for hex_bits in CB_GMRES_FLOAT32_HISTORY_HEX[1:]:
        value = struct.unpack("<d", bytes.fromhex(hex_bits))[0]
        assert float(np.float32(value)) == value
