"""MatrixMarket I/O tests."""

import io

import numpy as np
import pytest
import scipy.sparse as sp

from repro.ginkgo.matrix import Csr
from repro.ginkgo.mtx_io import (
    MtxError,
    read_mtx,
    read_mtx_string,
    write_mtx,
)


def _roundtrip(matrix, **kwargs) -> sp.coo_matrix:
    buf = io.StringIO()
    write_mtx(buf, matrix, **kwargs)
    return read_mtx_string(buf.getvalue())


class TestRead:
    def test_coordinate_general(self):
        text = (
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment\n"
            "3 4 2\n"
            "1 1 2.5\n"
            "3 4 -1.0\n"
        )
        mat = read_mtx_string(text)
        assert mat.shape == (3, 4)
        assert mat.nnz == 2
        assert mat.tocsr()[0, 0] == 2.5
        assert mat.tocsr()[2, 3] == -1.0

    def test_symmetric_expansion(self):
        text = (
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 3\n"
            "1 1 1.0\n"
            "2 1 5.0\n"
            "3 3 2.0\n"
        )
        dense = read_mtx_string(text).toarray()
        assert dense[0, 1] == 5.0
        assert dense[1, 0] == 5.0
        np.testing.assert_allclose(dense, dense.T)

    def test_skew_symmetric(self):
        text = (
            "%%MatrixMarket matrix coordinate real skew-symmetric\n"
            "2 2 1\n"
            "2 1 3.0\n"
        )
        dense = read_mtx_string(text).toarray()
        assert dense[1, 0] == 3.0
        assert dense[0, 1] == -3.0

    def test_pattern_field(self):
        text = (
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 2 2\n1 1\n2 2\n"
        )
        mat = read_mtx_string(text)
        np.testing.assert_array_equal(mat.toarray(), np.eye(2))

    def test_integer_field(self):
        text = (
            "%%MatrixMarket matrix coordinate integer general\n"
            "2 2 1\n1 2 7\n"
        )
        assert read_mtx_string(text).tocsr()[0, 1] == 7

    def test_array_format_column_major(self):
        text = (
            "%%MatrixMarket matrix array real general\n"
            "2 2\n1.0\n2.0\n3.0\n4.0\n"
        )
        np.testing.assert_array_equal(
            read_mtx_string(text).toarray(), [[1.0, 3.0], [2.0, 4.0]]
        )

    def test_array_symmetric(self):
        text = (
            "%%MatrixMarket matrix array real symmetric\n"
            "2 2\n1.0\n2.0\n3.0\n"
        )
        np.testing.assert_array_equal(
            read_mtx_string(text).toarray(), [[1.0, 2.0], [2.0, 3.0]]
        )


class TestReadErrors:
    def test_not_matrixmarket(self):
        with pytest.raises(MtxError, match="not a MatrixMarket"):
            read_mtx_string("garbage\n1 1 1\n")

    def test_unsupported_field(self):
        with pytest.raises(MtxError, match="field"):
            read_mtx_string(
                "%%MatrixMarket matrix coordinate complex general\n1 1 1\n"
                "1 1 1.0 0.0\n"
            )

    def test_unsupported_symmetry(self):
        with pytest.raises(MtxError, match="symmetry"):
            read_mtx_string(
                "%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n"
            )

    def test_wrong_entry_count(self):
        with pytest.raises(MtxError, match="declared 2"):
            read_mtx_string(
                "%%MatrixMarket matrix coordinate real general\n"
                "2 2 2\n1 1 1.0\n"
            )

    def test_out_of_range_indices(self):
        with pytest.raises(MtxError, match="outside"):
            read_mtx_string(
                "%%MatrixMarket matrix coordinate real general\n"
                "2 2 1\n5 1 1.0\n"
            )

    def test_malformed_entry(self):
        with pytest.raises(MtxError, match="malformed entry"):
            read_mtx_string(
                "%%MatrixMarket matrix coordinate real general\n"
                "2 2 1\n1 1\n"
            )

    def test_missing_size_line(self):
        with pytest.raises(MtxError, match="size"):
            read_mtx_string(
                "%%MatrixMarket matrix coordinate real general\n% only\n"
            )

    def test_non_numeric_size_line(self):
        with pytest.raises(MtxError, match="expected an integer"):
            read_mtx_string(
                "%%MatrixMarket matrix coordinate real general\n"
                "two 2 1\n1 1 1.0\n"
            )

    def test_negative_dimensions(self):
        with pytest.raises(MtxError, match="negative"):
            read_mtx_string(
                "%%MatrixMarket matrix coordinate real general\n"
                "-2 2 1\n1 1 1.0\n"
            )

    def test_non_numeric_entry_index(self):
        with pytest.raises(MtxError, match="row index"):
            read_mtx_string(
                "%%MatrixMarket matrix coordinate real general\n"
                "2 2 1\nx 1 1.0\n"
            )

    def test_non_numeric_entry_value(self):
        with pytest.raises(MtxError, match="entry value"):
            read_mtx_string(
                "%%MatrixMarket matrix coordinate real general\n"
                "2 2 1\n1 1 abc\n"
            )

    def test_excess_entries(self):
        with pytest.raises(MtxError, match="more than the declared"):
            read_mtx_string(
                "%%MatrixMarket matrix coordinate real general\n"
                "2 2 1\n1 1 1.0\n2 2 2.0\n"
            )

    def test_array_non_numeric_value(self):
        with pytest.raises(MtxError, match="array value"):
            read_mtx_string(
                "%%MatrixMarket matrix array real general\n2 1\n1.0\nnope\n"
            )

    def test_array_malformed_size_line(self):
        with pytest.raises(MtxError, match="array size"):
            read_mtx_string(
                "%%MatrixMarket matrix array real general\n2\n1.0\n2.0\n"
            )

    def test_zero_index_rejected(self):
        # MatrixMarket is 1-based; an index of 0 lands outside after shift.
        with pytest.raises(MtxError, match="outside"):
            read_mtx_string(
                "%%MatrixMarket matrix coordinate real general\n"
                "2 2 1\n0 1 1.0\n"
            )


class TestWrite:
    def test_roundtrip_random(self, rng):
        mat = sp.random(
            17, 23, density=0.2, format="coo", random_state=rng
        )
        back = _roundtrip(mat)
        assert (abs(mat - back)).max() < 1e-14

    def test_roundtrip_preserves_precision(self):
        mat = sp.coo_matrix(np.array([[1.0 / 3.0]]))
        back = _roundtrip(mat)
        assert back.toarray()[0, 0] == 1.0 / 3.0

    def test_symmetric_write_halves_entries(self, rng):
        half = sp.random(10, 10, density=0.2, format="csr", random_state=rng)
        mat = half + half.T
        buf = io.StringIO()
        write_mtx(buf, mat, symmetry="symmetric")
        assert "symmetric" in buf.getvalue().splitlines()[0]
        back = read_mtx_string(buf.getvalue())
        assert (abs(mat - back)).max() < 1e-14

    def test_write_engine_matrix(self, ref, general_small):
        mat = Csr.from_scipy(ref, general_small)
        buf = io.StringIO()
        write_mtx(buf, mat, comment="engine matrix")
        back = read_mtx_string(buf.getvalue())
        assert (abs(general_small - back)).max() < 1e-14

    def test_write_dense_array(self):
        buf = io.StringIO()
        write_mtx(buf, np.array([[1.0, 0.0], [0.0, 2.0]]))
        back = read_mtx_string(buf.getvalue())
        np.testing.assert_array_equal(back.toarray(), [[1, 0], [0, 2]])

    def test_write_to_path(self, tmp_path, rng):
        mat = sp.random(5, 5, density=0.4, random_state=rng)
        path = tmp_path / "out.mtx"
        write_mtx(path, mat)
        back = read_mtx(path)
        assert (abs(mat - back)).max() < 1e-14

    def test_invalid_symmetry(self):
        with pytest.raises(MtxError):
            write_mtx(io.StringIO(), np.eye(2), symmetry="hermitian")

    def test_comment_written(self):
        buf = io.StringIO()
        write_mtx(buf, np.eye(2), comment="line one\nline two")
        lines = buf.getvalue().splitlines()
        assert lines[1] == "% line one"
        assert lines[2] == "% line two"


class TestExecutorAwareRead:
    """read_mtx_string places the matrix on an executor when given one."""

    TEXT = (
        "%%MatrixMarket matrix coordinate real general\n"
        "3 3 4\n"
        "1 1 2.0\n"
        "2 2 3.0\n"
        "3 3 4.0\n"
        "3 1 -1.0\n"
    )

    def test_returns_raw_coo_without_executor(self):
        coo = read_mtx_string(self.TEXT)
        assert sp.issparse(coo)
        assert coo.format == "coo"

    def test_returns_csr_linop_on_executor(self, ref):
        mat = read_mtx_string(self.TEXT, exec_=ref)
        assert isinstance(mat, Csr)
        assert mat.executor is ref
        assert mat.size.rows == 3
        expected = read_mtx_string(self.TEXT).toarray()
        np.testing.assert_array_equal(mat.to_scipy().toarray(), expected)

    def test_returns_coo_linop_and_dtypes(self, ref):
        from repro.ginkgo.matrix import Coo

        mat = read_mtx_string(
            self.TEXT,
            exec_=ref,
            format="coo",
            value_dtype=np.float32,
            index_dtype=np.int64,
        )
        assert isinstance(mat, Coo)
        assert mat.dtype == np.float32
        assert mat.index_dtype == np.int64

    def test_pattern_symmetric_header(self, ref):
        text = (
            "%%MatrixMarket matrix coordinate pattern symmetric\n"
            "3 3 3\n"
            "1 1\n"
            "2 1\n"
            "3 2\n"
        )
        mat = read_mtx_string(text, exec_=ref)
        assert isinstance(mat, Csr)
        dense = mat.to_scipy().toarray()
        expected = np.array(
            [[1.0, 1.0, 0.0], [1.0, 0.0, 1.0], [0.0, 1.0, 0.0]]
        )
        np.testing.assert_array_equal(dense, expected)

    def test_integer_field_header(self, ref):
        text = (
            "%%MatrixMarket matrix coordinate integer general\n"
            "2 2 3\n"
            "1 1 5\n"
            "2 2 -7\n"
            "2 1 3\n"
        )
        mat = read_mtx_string(text, exec_=ref)
        dense = mat.to_scipy().toarray()
        np.testing.assert_array_equal(
            dense, np.array([[5.0, 0.0], [3.0, -7.0]])
        )

    def test_unknown_target_format(self, ref):
        with pytest.raises(MtxError, match="unsupported target format"):
            read_mtx_string(self.TEXT, exec_=ref, format="ell")
