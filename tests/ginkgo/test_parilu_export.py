"""ParILU fixed-point factorisation and CSV-export tests."""

import numpy as np
import pytest

from repro.bench.export import load_series_csv, save_rows_csv, save_series_csv
from repro.ginkgo import BadDimension
from repro.ginkgo.exceptions import GinkgoError
from repro.ginkgo.factorization import ilu0, parilu
from repro.ginkgo.matrix import Csr, Dense
from repro.ginkgo.solver import Gmres
from repro.ginkgo.stop import Iteration, ResidualNorm


class TestParIlu:
    def test_converges_to_exact_ilu0(self, ref, general_small):
        mtx = Csr.from_scipy(ref, general_small)
        exact = ilu0(mtx)
        approx = parilu(mtx, sweeps=15)
        np.testing.assert_allclose(
            approx.l_factor.to_scipy().toarray(),
            exact.l_factor.to_scipy().toarray(),
            atol=1e-10,
        )
        np.testing.assert_allclose(
            approx.u_factor.to_scipy().toarray(),
            exact.u_factor.to_scipy().toarray(),
            atol=1e-10,
        )

    def test_error_decreases_with_sweeps(self, ref, general_small):
        mtx = Csr.from_scipy(ref, general_small)
        exact = ilu0(mtx).u_factor.to_scipy().toarray()
        errors = []
        for sweeps in (1, 3, 6):
            approx = parilu(mtx, sweeps=sweeps)
            errors.append(
                np.abs(approx.u_factor.to_scipy().toarray() - exact).max()
            )
        assert errors[0] > errors[1] > errors[2]

    def test_pattern_preserved(self, ref, general_small):
        mtx = Csr.from_scipy(ref, general_small)
        fact = parilu(mtx, sweeps=3)
        assert fact.l_factor.nnz + fact.u_factor.nnz == (
            general_small.nnz + general_small.shape[0]
        )  # + unit diagonal stored in L

    def test_l_unit_diagonal(self, ref, general_small):
        fact = parilu(Csr.from_scipy(ref, general_small), sweeps=2)
        np.testing.assert_allclose(
            fact.l_factor.to_scipy().diagonal(), 1.0
        )

    def test_few_sweeps_still_precondition(self, ref, general_small):
        # Even an inexact ParILU (3 sweeps) accelerates GMRES, the whole
        # point of the fixed-point construction.
        from repro.ginkgo.preconditioner import Ilu

        mtx = Csr.from_scipy(ref, general_small)
        precond = Ilu(ref, algorithm="parilu", sweeps=3).generate(mtx)
        assert precond.factorization.sweeps == 3

        def iterations(p):
            solver = Gmres(
                ref, criteria=Iteration(400) | ResidualNorm(1e-9),
                preconditioner=p,
            ).generate(mtx)
            b = Dense.full(ref, (mtx.size.rows, 1), 1.0, np.float64)
            x = Dense.zeros(ref, (mtx.size.rows, 1), np.float64)
            solver.apply(b, x)
            assert solver.converged
            return solver.num_iterations

        assert iterations(precond) < iterations(None)

    def test_validation(self, ref, rect_small, general_small):
        with pytest.raises(BadDimension):
            parilu(Csr.from_scipy(ref, rect_small))
        with pytest.raises(GinkgoError, match="sweeps"):
            parilu(Csr.from_scipy(ref, general_small), sweeps=0)

    def test_sweeps_recorded(self, ref, general_small):
        fact = parilu(Csr.from_scipy(ref, general_small), sweeps=4)
        assert fact.sweeps == 4


class TestCsvExport:
    def test_series_roundtrip(self, tmp_path):
        result = {
            "series": {
                "a": [(1.0, 2.0), (2.0, 4.0)],
                "b": [(1.0, 3.0)],
            }
        }
        path = tmp_path / "series.csv"
        save_series_csv(result, path)
        back = load_series_csv(path)
        assert back["a"] == [(1.0, 2.0), (2.0, 4.0)]
        assert back["b"] == [(1.0, 3.0)]

    def test_rows_export(self, tmp_path):
        result = {"rows": [(1, "x", 2.5), (2, "y", 3.5)]}
        path = tmp_path / "rows.csv"
        save_rows_csv(result, ["id", "name", "value"], path)
        text = path.read_text()
        assert text.splitlines()[0] == "id,name,value"
        assert "1,x,2.5" in text

    def test_missing_keys_raise(self, tmp_path):
        with pytest.raises(ValueError):
            save_series_csv({}, tmp_path / "x.csv")
        with pytest.raises(ValueError):
            save_rows_csv({}, ["a"], tmp_path / "y.csv")

    def test_export_real_figure(self, tmp_path):
        from repro.bench import fig3c_solver_gpu
        from repro.suitesparse import solver_suite

        result = fig3c_solver_gpu(
            solver_suite(count=2, min_nnz=2e4, max_nnz=5e4), iterations=10
        )
        path = tmp_path / "fig3c.csv"
        save_series_csv(result, path)
        back = load_series_csv(path)
        assert set(back) == {"CG", "CGS", "GMRES"}
        assert all(len(points) == 2 for points in back.values())
