"""Preconditioner and factorization tests."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.ginkgo import BadDimension
from repro.ginkgo.exceptions import GinkgoError
from repro.ginkgo.factorization import ic0, ilu0, lu
from repro.ginkgo.matrix import Csr, Dense
from repro.ginkgo.preconditioner import Ic, Ilu, Isai, Jacobi
from repro.ginkgo.solver import Cg, Gmres
from repro.ginkgo.stop import Iteration, ResidualNorm

CRIT = Iteration(500) | ResidualNorm(1e-10)


def _iterations_with(ref, matrix, precond_factory, solver_cls=Cg):
    mtx = Csr.from_scipy(ref, matrix)
    solver = solver_cls(
        ref, criteria=CRIT, preconditioner=precond_factory
    ).generate(mtx)
    b = Dense.full(ref, (matrix.shape[0], 1), 1.0, np.float64)
    x = Dense.zeros(ref, (matrix.shape[0], 1), np.float64)
    solver.apply(b, x)
    assert solver.converged
    return solver.num_iterations, np.asarray(x)


class TestJacobi:
    def test_scalar_jacobi_is_diagonal_inverse(self, ref, spd_small, rng):
        mtx = Csr.from_scipy(ref, spd_small)
        op = Jacobi(ref).generate(mtx)
        r = rng.standard_normal((spd_small.shape[0], 1))
        z = Dense.zeros(ref, r.shape, np.float64)
        op.apply(Dense(ref, r), z)
        np.testing.assert_allclose(
            np.asarray(z), r / spd_small.diagonal()[:, None]
        )

    def test_block_jacobi_inverts_blocks(self, ref):
        blocks = sp.block_diag(
            [np.array([[4.0, 1.0], [1.0, 3.0]])] * 5, format="csr"
        )
        mtx = Csr.from_scipy(ref, blocks)
        op = Jacobi(ref, max_block_size=2).generate(mtx)
        b = Dense.full(ref, (10, 1), 1.0, np.float64)
        z = Dense.zeros(ref, (10, 1), np.float64)
        op.apply(b, z)
        expect = np.linalg.solve(blocks.toarray(), np.ones((10, 1)))
        np.testing.assert_allclose(np.asarray(z), expect, atol=1e-12)

    def test_block_jacobi_accelerates_cg(self, ref):
        # Strongly block-structured problem: block Jacobi needs fewer
        # iterations than scalar Jacobi.
        rng = np.random.default_rng(42)
        blocks = []
        for _ in range(15):
            q = rng.standard_normal((4, 4))
            blocks.append(q @ q.T + 4 * np.eye(4))
        matrix = sp.block_diag(blocks, format="csr") + 0.01 * sp.eye(60)
        scalar_iters, _ = _iterations_with(ref, matrix.tocsr(), Jacobi(ref))
        block_iters, _ = _iterations_with(
            ref, matrix.tocsr(), Jacobi(ref, max_block_size=4)
        )
        assert block_iters < scalar_iters

    def test_invalid_block_size(self, ref):
        with pytest.raises(GinkgoError):
            Jacobi(ref, max_block_size=0)

    def test_requires_square(self, ref, rect_small):
        mtx = Csr.from_scipy(ref, rect_small)
        with pytest.raises(BadDimension):
            Jacobi(ref).generate(mtx)

    def test_zero_diagonal_handled(self, ref):
        mat = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 2.0]]))
        op = Jacobi(ref).generate(Csr.from_scipy(ref, mat))
        z = Dense.zeros(ref, (2, 1), np.float64)
        op.apply(Dense.full(ref, (2, 1), 1.0, np.float64), z)
        # Zero diagonal entries are skipped (z stays 0 there).
        assert np.asarray(z)[0, 0] == 0.0


class TestIluIc:
    def test_ilu_reduces_gmres_iterations(self, ref, general_small):
        plain, _ = _iterations_with(ref, general_small, None, Gmres)
        precond, _ = _iterations_with(ref, general_small, Ilu(ref), Gmres)
        assert precond <= plain

    def test_ic_reduces_cg_iterations(self, ref, spd_small):
        plain, _ = _iterations_with(ref, spd_small, None)
        precond, _ = _iterations_with(ref, spd_small, Ic(ref))
        assert precond < plain

    def test_ilu_apply_is_two_triangular_solves(self, ref, spd_small, rng):
        mtx = Csr.from_scipy(ref, spd_small)
        op = Ilu(ref).generate(mtx)
        r = rng.standard_normal((spd_small.shape[0], 1))
        z = Dense.zeros(ref, r.shape, np.float64)
        op.apply(Dense(ref, r), z)
        l_np = op.factorization.l_factor.to_scipy().toarray()
        u_np = op.factorization.u_factor.to_scipy().toarray()
        expect = np.linalg.solve(u_np, np.linalg.solve(l_np, r))
        np.testing.assert_allclose(np.asarray(z), expect, atol=1e-10)


class TestIsai:
    def test_isai_approximates_inverse(self, ref, spd_small, rng):
        mtx = Csr.from_scipy(ref, spd_small)
        op = Isai(ref).generate(mtx)
        w = op.approximate_inverse.to_scipy()
        product = (w @ spd_small).toarray()
        # On the pattern, W A should be close to identity.
        diag_err = np.abs(np.diag(product) - 1.0).max()
        assert diag_err < 0.2

    def test_isai_accelerates_cg(self, ref, spd_small):
        plain, _ = _iterations_with(ref, spd_small, None)
        precond, _ = _iterations_with(ref, spd_small, Isai(ref))
        assert precond < plain

    def test_invalid_sparsity_power(self, ref):
        with pytest.raises(GinkgoError):
            Isai(ref, sparsity_power=0)


class TestIlu0Factorization:
    def test_product_matches_on_pattern(self, ref, general_small):
        mtx = Csr.from_scipy(ref, general_small)
        fact = ilu0(mtx)
        l_np = fact.l_factor.to_scipy()
        u_np = fact.u_factor.to_scipy()
        product = (l_np @ u_np).toarray()
        a_np = general_small.toarray()
        mask = a_np != 0
        # ILU(0): L U equals A exactly on A's sparsity pattern.
        np.testing.assert_allclose(product[mask], a_np[mask], atol=1e-9)

    def test_l_unit_diagonal(self, ref, general_small):
        fact = ilu0(Csr.from_scipy(ref, general_small))
        np.testing.assert_allclose(
            fact.l_factor.to_scipy().diagonal(), 1.0
        )

    def test_factors_are_triangular(self, ref, general_small):
        fact = ilu0(Csr.from_scipy(ref, general_small))
        l_np = fact.l_factor.to_scipy().toarray()
        u_np = fact.u_factor.to_scipy().toarray()
        assert np.allclose(l_np, np.tril(l_np))
        assert np.allclose(u_np, np.triu(u_np))

    def test_dense_pattern_reproduces_lu(self, ref):
        # On a fully dense matrix, ILU(0) is the complete LU.
        rng = np.random.default_rng(1)
        a = rng.standard_normal((8, 8)) + 8 * np.eye(8)
        fact = ilu0(Csr.from_scipy(ref, sp.csr_matrix(a)))
        product = (
            fact.l_factor.to_scipy() @ fact.u_factor.to_scipy()
        ).toarray()
        np.testing.assert_allclose(product, a, atol=1e-10)

    def test_missing_diagonal_raises(self, ref):
        mat = sp.csr_matrix(np.array([[1.0, 1.0], [1.0, 0.0]]))
        mat.eliminate_zeros()
        with pytest.raises(GinkgoError, match="diagonal"):
            ilu0(Csr.from_scipy(ref, mat))

    def test_requires_square(self, ref, rect_small):
        with pytest.raises(BadDimension):
            ilu0(Csr.from_scipy(ref, rect_small))


class TestIc0Factorization:
    def test_llt_matches_on_pattern(self, ref, spd_small):
        fact = ic0(Csr.from_scipy(ref, spd_small))
        l_np = fact.l_factor.to_scipy()
        product = (l_np @ l_np.T).toarray()
        a_np = spd_small.toarray()
        mask = np.tril(a_np) != 0
        np.testing.assert_allclose(
            np.tril(product)[mask], np.tril(a_np)[mask], atol=1e-9
        )

    def test_lt_factor_is_transpose(self, ref, spd_small):
        fact = ic0(Csr.from_scipy(ref, spd_small))
        np.testing.assert_allclose(
            fact.lt_factor.to_scipy().toarray(),
            fact.l_factor.to_scipy().T.toarray(),
        )

    def test_indefinite_matrix_raises(self, ref):
        mat = sp.csr_matrix(np.array([[1.0, 2.0], [2.0, 1.0]]))
        with pytest.raises(GinkgoError, match="positive"):
            ic0(Csr.from_scipy(ref, mat))


class TestFullLu:
    def test_reconstructs_permuted_matrix(self, ref, general_small):
        fact = lu(Csr.from_scipy(ref, general_small))
        l_np = fact.l_factor.to_scipy().toarray()
        u_np = fact.u_factor.to_scipy().toarray()
        pr = fact.row_permutation.permutation
        pc = fact.col_permutation.permutation
        a_np = general_small.toarray()
        # SuperLU: Pr A Pc = L U, i.e. A[argsort(perm_r)][:, argsort(perm_c)].
        permuted = a_np[np.argsort(pr), :][:, np.argsort(pc)]
        np.testing.assert_allclose(l_np @ u_np, permuted, atol=1e-9)

    def test_requires_square(self, ref, rect_small):
        with pytest.raises(BadDimension):
            lu(Csr.from_scipy(ref, rect_small))
