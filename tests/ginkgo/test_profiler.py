"""The ProfilerHook: span structure, determinism, attribution, metrics."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bindings.overhead import reset_models
from repro.ginkgo.executor import CudaExecutor, ReferenceExecutor
from repro.ginkgo.fault import FaultInjector, FaultyExecutor
from repro.ginkgo.log import MetricsLogger, MetricsRegistry, ProfilerHook
from repro.ginkgo.matrix import Csr, Dense
from repro.ginkgo.preconditioner import Ilu
from repro.ginkgo.solver import Cg, Gmres
from repro.ginkgo.stop import Iteration, ResidualNorm
from repro.perfmodel import KernelCost


def solve_profiled(exec_, matrix_sp, solver_cls=Cg, metrics=None, **params):
    """One profiled solve; returns (profiler, solver)."""
    mtx = Csr.from_scipy(exec_, matrix_sp)
    b = Dense(exec_, np.ones((mtx.size.rows, 1)))
    x = Dense.zeros(exec_, (mtx.size.rows, 1), np.float64)
    prof = ProfilerHook(metrics=metrics)
    prof.attach(exec_)
    try:
        solver = solver_cls(
            exec_,
            criteria=Iteration(200) | ResidualNorm(1e-8),
            **params,
        ).generate(mtx)
        solver.apply(b, x)
    finally:
        prof.detach(exec_)
    prof.close()
    return prof, solver


class TestSpanStructure:
    def test_apply_span_nesting_matches_solver_structure(self, ref, spd_small):
        prof, solver = solve_profiled(ref, spd_small)
        applies = prof.trace.find("CgSolver::apply")
        assert len(applies) == 1
        root = applies[0]
        # Every direct child of the solver apply is an iteration span
        # (plus the pre-loop setup adopted into iteration 0).
        iterations = [c for c in root.children if c.category == "iteration"]
        assert len(iterations) == solver.num_iterations + 1
        assert [s.name for s in iterations] == [
            f"iteration {i}" for i in range(len(iterations))
        ]
        # Iterations tile the apply span: contiguous, inside the parent.
        for earlier, later in zip(iterations, iterations[1:]):
            assert earlier.end == later.start
        assert iterations[0].start == root.start

    def test_generate_span_captures_preconditioner_setup(self, ref, spd_small):
        prof, _ = solve_profiled(
            ref, spd_small, solver_cls=Gmres, preconditioner=Ilu(ref)
        )
        generates = prof.trace.find("GmresSolver::generate")
        assert len(generates) == 1
        kernels = [
            s for s in generates[0].walk() if s.category == "kernel"
        ]
        assert any(s.name == "generate_ilu0" for s in kernels)

    def test_preconditioner_apply_spans_inside_iterations(self, ref, spd_small):
        prof, _ = solve_profiled(
            ref, spd_small, solver_cls=Gmres, preconditioner=Ilu(ref)
        )
        spans = prof.trace.find("IluOperator::apply")
        assert spans
        assert all(s.category == "precond" for s in spans)

    def test_leaf_events_cover_the_apply(self, ref, spd_small):
        prof, _ = solve_profiled(ref, spd_small)
        root = prof.trace.find("CgSolver::apply")[0]
        leaf_time = sum(s.duration for s in root.walk() if s.is_leaf)
        assert leaf_time == pytest.approx(root.duration, rel=1e-9)

    def test_kernel_leaves_carry_cost_metadata(self, ref):
        prof = ProfilerHook()
        prof.attach(ref)
        ref.run(KernelCost("spmv_csr", 2e4, 1e5, launches=2))
        prof.detach(ref)
        leaf = prof.trace.find("spmv_csr")[0]
        assert leaf.meta == {"flops": 2e4, "bytes": 1e5, "launches": 2}

    def test_untraced_clock_records_nothing(self, ref):
        prof = ProfilerHook()
        ref.run(KernelCost("spmv_csr", 2e4, 1e5))
        assert prof.trace.num_spans == 0


class TestDeterminismAndAttribution:
    def run_once(self, matrix_sp):
        reset_models()
        exec_ = CudaExecutor.create(noisy=False)
        prof, _ = solve_profiled(
            exec_, matrix_sp, solver_cls=Gmres, preconditioner=Ilu(exec_)
        )
        return prof

    def test_same_seed_traces_are_byte_identical(self, spd_small):
        a = self.run_once(spd_small).to_chrome_trace()
        b = self.run_once(spd_small).to_chrome_trace()
        assert a == b

    def test_gmres_ilu_attribution_covers_wallclock(self, spd_small):
        table = self.run_once(spd_small).attribution()
        assert table.coverage >= 0.99
        assert table.kernel_time > 0.0
        assert table.stall_time > 0.0

    def test_chrome_export_is_valid_and_monotonic(self, spd_small):
        data = json.loads(self.run_once(spd_small).to_chrome_trace())
        ts = [e["ts"] for e in data["traceEvents"]]
        assert ts and ts == sorted(ts)


class TestFaultsAndMetrics:
    def test_fault_instants_land_in_trace(self):
        inner = CudaExecutor.create(noisy=False)
        exec_ = FaultyExecutor.create(
            inner, FaultInjector(schedule={"run": [1]})
        )
        prof = ProfilerHook()
        prof.attach(exec_)
        try:
            exec_.run(KernelCost("k0", 1.0, 8.0))
            with pytest.raises(Exception):
                exec_.run(KernelCost("k1", 1.0, 8.0))
        finally:
            prof.detach(exec_)
        faults = prof.trace.find("fault_injected")
        assert len(faults) == 1
        assert faults[0].meta["site"] == "run"

    def test_logger_attachment_deduplicates_with_tracer(self):
        # Attached both as clock tracer and executor logger, the fault
        # must be recorded exactly once.
        inner = CudaExecutor.create(noisy=False)
        exec_ = FaultyExecutor.create(
            inner, FaultInjector(schedule={"run": [0]})
        )
        prof = ProfilerHook()
        prof.attach(exec_)
        exec_.add_logger(prof)
        try:
            with pytest.raises(Exception):
                exec_.run(KernelCost("k0", 1.0, 8.0))
        finally:
            exec_.remove_logger(prof)
            prof.detach(exec_)
        assert len(prof.trace.find("fault_injected")) == 1

    def test_logger_only_attachment_still_sees_faults(self):
        inner = CudaExecutor.create(noisy=False)
        exec_ = FaultyExecutor.create(
            inner, FaultInjector(schedule={"run": [0]})
        )
        prof = ProfilerHook()
        exec_.add_logger(prof)
        try:
            with pytest.raises(Exception):
                exec_.run(KernelCost("k0", 1.0, 8.0))
        finally:
            exec_.remove_logger(prof)
        assert len(prof.trace.find("fault_injected")) == 1

    def test_profiler_feeds_metrics(self, ref, spd_small):
        metrics = MetricsRegistry()
        prof, solver = solve_profiled(ref, spd_small, metrics=metrics)
        assert metrics.counter("kernel_launches").value > 0
        # The initial residual check also emits an iteration mark.
        assert (
            metrics.counter("iterations").value == solver.num_iterations + 1
        )

    def test_metrics_logger_counts_solver_events(self, ref, spd_small):
        metrics = MetricsRegistry()
        mtx = Csr.from_scipy(ref, spd_small)
        b = Dense(ref, np.ones((mtx.size.rows, 1)))
        x = Dense.zeros(ref, (mtx.size.rows, 1), np.float64)
        solver = Cg(
            ref, criteria=Iteration(200) | ResidualNorm(1e-8)
        ).generate(mtx)
        solver.add_logger(MetricsLogger(metrics))
        solver.apply(b, x)
        assert metrics.counter("solves_converged").value == 1
        # iteration_complete fires once per residual check, including the
        # initial iteration-0 check before the loop.
        assert (
            metrics.counter("iterations").value == solver.num_iterations + 1
        )
        hist = metrics.histogram("iterations_per_solve")
        assert hist.count == 1
        assert hist.mean == solver.num_iterations


class TestTrackNaming:
    def test_tracks_named_by_spec_with_ordinals(self):
        a = ReferenceExecutor.create(noisy=False)
        b = ReferenceExecutor.create(noisy=False)
        prof = ProfilerHook()
        prof.attach(a)
        prof.attach(b)
        a.run(KernelCost("k", 1.0, 8.0))
        b.run(KernelCost("k", 1.0, 8.0))
        prof.detach(a)
        prof.detach(b)
        assert prof.trace.tracks == [
            a.spec.name, f"{b.spec.name} #2",
        ]
