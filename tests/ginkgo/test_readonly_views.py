"""Exported views are read-only by default (stale-memo protection).

A raw write through ``csr.values[...]`` or ``dense.view()[...]`` bypasses
``mark_modified()``, so every memoized derived object (cached
conversions, transposes, lazy-expression results) silently keeps serving
the old data.  The properties therefore hand out non-writeable views;
deliberate in-place mutation goes through ``writable_values()`` /
``writable_view()`` followed by an explicit ``mark_modified()``.
"""

import numpy as np
import pytest
import scipy.sparse as sp

import repro as pg
from repro.ginkgo.exceptions import GinkgoError
from repro.ginkgo.matrix import Coo, Csr, Dense, Hybrid


@pytest.fixture
def small_sp(rng):
    mat = sp.random(10, 10, density=0.4, format="csr", random_state=rng)
    mat.setdiag(3.0)
    return mat.tocsr()


class TestCsr:
    def test_views_reject_writes(self, ref, small_sp):
        mtx = Csr.from_scipy(ref, small_sp)
        for view in (mtx.values, mtx.col_idxs, mtx.row_ptrs):
            assert not view.flags.writeable
            with pytest.raises(ValueError):
                view[0] = 0

    def test_views_still_read_correctly(self, ref, small_sp):
        mtx = Csr.from_scipy(ref, small_sp)
        np.testing.assert_array_equal(mtx.values, small_sp.data)
        np.testing.assert_array_equal(mtx.row_ptrs, small_sp.indptr)

    def test_writable_values_plus_mark_modified(self, ref, small_sp):
        mtx = Csr.from_scipy(ref, small_sp)
        t1 = mtx.transpose()
        mtx.writable_values()[:] = 1.0
        mtx.mark_modified()
        assert mtx.transpose() is not t1
        np.testing.assert_array_equal(mtx.values, 1.0)

    def test_stale_memo_scenario_is_blocked(self, ref):
        """The exact bug class the default prevents: poke values, reuse
        a cached product computed from the old data."""
        base = sp.csr_matrix(np.array([[2.0, 0.0], [0.0, 3.0]]))
        mtx = Csr.from_scipy(ref, base)
        b = Dense(ref, np.ones((2, 1)))
        x = Dense.zeros(ref, (2, 1), np.float64)
        mtx.apply(b, x)  # warms derived caches
        with pytest.raises(ValueError):
            mtx.values[:] = [9.0, 9.0]  # would NOT invalidate — rejected
        mtx.apply(b, x)
        np.testing.assert_array_equal(np.asarray(x), [[2.0], [3.0]])


class TestCoo:
    def test_views_reject_writes(self, ref, small_sp):
        mtx = Coo.from_scipy(ref, small_sp)
        for view in (mtx.values, mtx.row_idxs, mtx.col_idxs):
            assert not view.flags.writeable
            with pytest.raises(ValueError):
                view[0] = 0

    def test_writable_values_roundtrip(self, ref, small_sp):
        mtx = Coo.from_scipy(ref, small_sp)
        original = mtx.values.copy()
        mtx.writable_values()[:] = original * 2.0
        mtx.mark_modified()
        np.testing.assert_array_equal(mtx.values, original * 2.0)


class TestDense:
    def test_view_rejects_writes(self, ref, rng):
        d = Dense(ref, rng.standard_normal((4, 2)))
        view = d.view()
        assert not view.flags.writeable
        with pytest.raises(ValueError):
            view[0, 0] = 99.0

    def test_writable_view_plus_mark_modified(self, ref, rng):
        d = Dense(ref, rng.standard_normal((4, 2)))
        t1 = d.transpose()
        d.writable_view()[:, :] = 7.0
        d.mark_modified()
        assert d.transpose() is not t1
        np.testing.assert_array_equal(d.view(), 7.0)

    def test_lazy_results_not_poisoned(self, ref, rng):
        """Read-only views keep LazyExpr memoization honest: the only
        mutation paths all bump data_version."""
        a = Dense(ref, np.ones((4, 1)))
        with pg.deferred():
            expr = 2.0 * a
            r1 = expr.evaluate()
            with pytest.raises(ValueError):
                a.view()[:] = 5.0  # the silent-staleness write is blocked
            assert expr.evaluate() is r1  # cache still valid — data unchanged
            a.writable_view()[:] = 5.0
            a.mark_modified()
            r2 = expr.evaluate()
        assert r2 is not r1
        np.testing.assert_array_equal(np.asarray(r2), 10.0)


class TestEscapeHatchErrors:
    def test_hybrid_has_no_single_values_array(self, ref, small_sp):
        mtx = Hybrid.from_scipy(ref, small_sp)
        with pytest.raises(GinkgoError):
            mtx.writable_values()

    def test_to_scipy_returns_independent_copy(self, ref, small_sp):
        mtx = Csr.from_scipy(ref, small_sp)
        out = mtx.to_scipy()
        out.data[:] = 0.0  # mutating the export must not touch the matrix
        np.testing.assert_array_equal(mtx.values, small_sp.data)
