"""Iterative solver tests: convergence, stopping, logging, parameters."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.ginkgo import BadDimension
from repro.ginkgo.exceptions import GinkgoError
from repro.ginkgo.log import ConvergenceLogger, RecordLogger
from repro.ginkgo.matrix import Csr, Dense
from repro.ginkgo.preconditioner import Jacobi
from repro.ginkgo.solver import (
    Bicg,
    Bicgstab,
    Cg,
    Cgs,
    Fcg,
    Gmres,
    Ir,
    Minres,
)
from repro.ginkgo.stop import Iteration, ResidualNorm

ALL_KRYLOV = [Cg, Fcg, Cgs, Bicg, Bicgstab, Gmres, Minres]
CRIT = Iteration(800) | ResidualNorm(1e-11)


def _solve(factory_cls, ref, matrix, b_np, x0=None, **params):
    mtx = Csr.from_scipy(ref, matrix)
    solver = factory_cls(ref, criteria=CRIT, **params).generate(mtx)
    x = Dense(ref, x0) if x0 is not None else Dense.zeros(
        ref, (matrix.shape[0], 1), np.float64
    )
    solver.apply(Dense(ref, b_np), x)
    return solver, np.asarray(x)


class TestConvergenceSpd:
    @pytest.mark.parametrize("factory_cls", ALL_KRYLOV)
    def test_solves_spd_system(self, factory_cls, ref, spd_small, rng):
        xstar = rng.standard_normal((spd_small.shape[0], 1))
        solver, x = _solve(factory_cls, ref, spd_small, spd_small @ xstar)
        assert solver.converged, factory_cls.__name__
        np.testing.assert_allclose(x, xstar, atol=1e-7)

    @pytest.mark.parametrize("factory_cls", [Cgs, Bicg, Bicgstab, Gmres])
    def test_solves_nonsymmetric_system(
        self, factory_cls, ref, general_small, rng
    ):
        xstar = rng.standard_normal((general_small.shape[0], 1))
        solver, x = _solve(factory_cls, ref, general_small,
                           general_small @ xstar)
        assert solver.converged
        np.testing.assert_allclose(x, xstar, atol=1e-6)

    @pytest.mark.parametrize("factory_cls", [Cg, Cgs, Gmres, Bicgstab])
    def test_multi_rhs(self, factory_cls, ref, spd_small, rng):
        xstar = rng.standard_normal((spd_small.shape[0], 3))
        mtx = Csr.from_scipy(ref, spd_small)
        solver = factory_cls(ref, criteria=CRIT).generate(mtx)
        x = Dense.zeros(ref, (spd_small.shape[0], 3), np.float64)
        solver.apply(Dense(ref, spd_small @ xstar), x)
        np.testing.assert_allclose(np.asarray(x), xstar, atol=1e-6)

    def test_nonzero_initial_guess(self, ref, spd_small, rng):
        xstar = rng.standard_normal((spd_small.shape[0], 1))
        x0 = xstar + 0.01 * rng.standard_normal(xstar.shape)
        solver, x = _solve(Cg, ref, spd_small, spd_small @ xstar, x0=x0.copy())
        assert solver.converged
        # A good initial guess converges in fewer iterations than zeros.
        solver0, _ = _solve(Cg, ref, spd_small, spd_small @ xstar)
        assert solver.num_iterations < solver0.num_iterations

    def test_exact_initial_guess_stops_immediately(self, ref, spd_small, rng):
        xstar = rng.standard_normal((spd_small.shape[0], 1))
        solver, x = _solve(
            Cg, ref, spd_small, spd_small @ xstar, x0=xstar.copy()
        )
        assert solver.num_iterations == 0
        assert solver.converged


class TestStoppingBehaviour:
    def test_iteration_limit_respected(self, ref, spd_small):
        mtx = Csr.from_scipy(ref, spd_small)
        solver = Cg(ref, criteria=Iteration(3)).generate(mtx)
        b = Dense.full(ref, (spd_small.shape[0], 1), 1.0, np.float64)
        x = Dense.zeros(ref, (spd_small.shape[0], 1), np.float64)
        solver.apply(b, x)
        assert solver.num_iterations == 3
        assert not solver.converged

    def test_residual_criterion_marks_converged(self, ref, spd_small):
        mtx = Csr.from_scipy(ref, spd_small)
        solver = Cg(
            ref, criteria=Iteration(500) | ResidualNorm(1e-8)
        ).generate(mtx)
        b = Dense.full(ref, (spd_small.shape[0], 1), 1.0, np.float64)
        x = Dense.zeros(ref, (spd_small.shape[0], 1), np.float64)
        solver.apply(b, x)
        assert solver.converged
        assert solver.final_residual_norm <= 1e-8 * np.sqrt(
            spd_small.shape[0]
        )

    def test_criteria_list_is_or_combined(self, ref, spd_small):
        mtx = Csr.from_scipy(ref, spd_small)
        solver = Cg(
            ref, criteria=[Iteration(2), ResidualNorm(1e-30)]
        ).generate(mtx)
        b = Dense.full(ref, (spd_small.shape[0], 1), 1.0, np.float64)
        solver.apply(b, Dense.zeros(ref, (spd_small.shape[0], 1), np.float64))
        assert solver.num_iterations == 2

    def test_empty_criteria_list_rejected(self, ref):
        with pytest.raises(GinkgoError):
            Cg(ref, criteria=[])


class TestLoggingIntegration:
    def test_convergence_logger_tracks_history(self, ref, spd_small, rng):
        mtx = Csr.from_scipy(ref, spd_small)
        solver = Cg(ref, criteria=CRIT).generate(mtx)
        logger = ConvergenceLogger()
        solver.add_logger(logger)
        xstar = rng.standard_normal((spd_small.shape[0], 1))
        solver.apply(
            Dense(ref, spd_small @ xstar),
            Dense.zeros(ref, (spd_small.shape[0], 1), np.float64),
        )
        assert logger.converged
        assert logger.num_iterations == solver.num_iterations
        # CG on SPD: residual history ends far below where it started.
        assert logger.residual_norms[-1] < 1e-8 * logger.residual_norms[0]

    def test_record_logger_counts_iterations(self, ref, spd_small):
        mtx = Csr.from_scipy(ref, spd_small)
        solver = Cg(ref, criteria=Iteration(5)).generate(mtx)
        logger = RecordLogger()
        solver.add_logger(logger)
        b = Dense.full(ref, (spd_small.shape[0], 1), 1.0, np.float64)
        solver.apply(b, Dense.zeros(ref, (spd_small.shape[0], 1), np.float64))
        # initial check (iteration 0) + 5 iterations
        assert logger.count("iteration_complete") == 6


class TestFactoryValidation:
    def test_unknown_parameter_rejected(self, ref):
        with pytest.raises(GinkgoError, match="unknown parameters"):
            Cg(ref, tolerance=1e-5)

    def test_square_matrix_required(self, ref, rect_small):
        mtx = Csr.from_scipy(ref, rect_small)
        with pytest.raises(BadDimension):
            Cg(ref).generate(mtx)

    def test_gmres_krylov_dim_parameter(self, ref, spd_small):
        mtx = Csr.from_scipy(ref, spd_small)
        solver = Gmres(ref, criteria=CRIT, krylov_dim=10).generate(mtx)
        assert solver.parameters["krylov_dim"] == 10

    def test_gmres_invalid_krylov_dim(self, ref, spd_small, rng):
        mtx = Csr.from_scipy(ref, spd_small)
        solver = Gmres(ref, criteria=CRIT, krylov_dim=0).generate(mtx)
        b = Dense(ref, rng.standard_normal((spd_small.shape[0], 1)))
        with pytest.raises(GinkgoError, match="krylov_dim"):
            solver.apply(
                b, Dense.zeros(ref, (spd_small.shape[0], 1), np.float64)
            )

    def test_invalid_preconditioner_type(self, ref, spd_small):
        mtx = Csr.from_scipy(ref, spd_small)
        with pytest.raises(GinkgoError, match="preconditioner"):
            Cg(ref, preconditioner=42).generate(mtx)


class TestGmresRestart:
    def test_small_restart_still_converges(self, ref, spd_small, rng):
        xstar = rng.standard_normal((spd_small.shape[0], 1))
        solver, x = _solve(
            Gmres, ref, spd_small, spd_small @ xstar, krylov_dim=5
        )
        assert solver.converged
        np.testing.assert_allclose(x, xstar, atol=1e-6)

    def test_restart_affects_iteration_count(self, ref, general_small, rng):
        xstar = rng.standard_normal((general_small.shape[0], 1))
        b = general_small @ xstar
        full, _ = _solve(Gmres, ref, general_small, b, krylov_dim=50)
        tiny, _ = _solve(Gmres, ref, general_small, b, krylov_dim=3)
        assert tiny.num_iterations >= full.num_iterations


class TestIr:
    def test_richardson_with_jacobi_inner(self, ref, spd_small, rng):
        mtx = Csr.from_scipy(ref, spd_small)
        solver = Ir(
            ref,
            criteria=Iteration(2000) | ResidualNorm(1e-10),
            solver=Jacobi(ref),
        ).generate(mtx)
        xstar = rng.standard_normal((spd_small.shape[0], 1))
        x = Dense.zeros(ref, (spd_small.shape[0], 1), np.float64)
        solver.apply(Dense(ref, spd_small @ xstar), x)
        assert solver.converged
        np.testing.assert_allclose(np.asarray(x), xstar, atol=1e-7)

    def test_relaxation_factor(self, ref, spd_small, rng):
        mtx = Csr.from_scipy(ref, spd_small)
        solver = Ir(
            ref,
            criteria=Iteration(3000) | ResidualNorm(1e-8),
            solver=Jacobi(ref),
            relaxation_factor=0.8,
        ).generate(mtx)
        xstar = rng.standard_normal((spd_small.shape[0], 1))
        x = Dense.zeros(ref, (spd_small.shape[0], 1), np.float64)
        solver.apply(Dense(ref, spd_small @ xstar), x)
        assert solver.converged

    def test_inner_solver_accessible(self, ref, spd_small):
        mtx = Csr.from_scipy(ref, spd_small)
        solver = Ir(ref, solver=Jacobi(ref)).generate(mtx)
        assert solver.inner_solver is not None


class TestAdvancedApply:
    def test_solver_advanced_apply(self, ref, spd_small, rng):
        mtx = Csr.from_scipy(ref, spd_small)
        solver = Cg(ref, criteria=CRIT).generate(mtx)
        xstar = rng.standard_normal((spd_small.shape[0], 1))
        b = spd_small @ xstar
        x0 = rng.standard_normal(xstar.shape)
        x = Dense(ref, x0)
        solver.apply_advanced(2.0, Dense(ref, b), 0.5, x)
        np.testing.assert_allclose(
            np.asarray(x), 2.0 * xstar + 0.5 * x0, atol=1e-5
        )
