"""Stopping-criterion and logger unit tests."""

import io

import numpy as np
import pytest

from repro.ginkgo.exceptions import GinkgoError
from repro.ginkgo.log import ConvergenceLogger, RecordLogger, StreamLogger
from repro.ginkgo.stop import (
    Combined,
    CriterionContext,
    Iteration,
    ResidualNorm,
    Time,
)
from repro.perfmodel import NVIDIA_A100, SimClock


class TestIteration:
    def test_stops_at_limit(self):
        crit = Iteration(5).generate(CriterionContext())
        assert not crit.check(4, 1.0)
        assert crit.check(5, 1.0)
        assert crit.check(6, 1.0)

    def test_not_marked_converged(self):
        crit = Iteration(1).generate(CriterionContext())
        crit.check(1, 1.0)
        assert not crit.converged

    def test_negative_rejected(self):
        with pytest.raises(GinkgoError):
            Iteration(-1)


class TestResidualNorm:
    def test_rhs_norm_baseline(self):
        context = CriterionContext(rhs_norm=10.0, initial_resnorm=100.0)
        crit = ResidualNorm(1e-2, baseline="rhs_norm").generate(context)
        assert not crit.check(1, 0.2)
        assert crit.check(2, 0.05)
        assert crit.converged

    def test_initial_resnorm_baseline(self):
        context = CriterionContext(rhs_norm=10.0, initial_resnorm=100.0)
        crit = ResidualNorm(1e-2, baseline="initial_resnorm").generate(context)
        assert not crit.check(1, 1.5)
        assert crit.check(2, 0.5)

    def test_absolute_baseline(self):
        crit = ResidualNorm(1e-3, baseline="absolute").generate(
            CriterionContext(rhs_norm=1e6)
        )
        assert not crit.check(1, 1e-2)
        assert crit.check(2, 1e-4)

    def test_vector_norms_require_all_columns(self):
        context = CriterionContext(rhs_norm=np.array([1.0, 1.0]))
        crit = ResidualNorm(1e-2).generate(context)
        assert not crit.check(1, np.array([1e-3, 1e-1]))
        assert crit.check(2, np.array([1e-3, 1e-3]))

    def test_unknown_baseline(self):
        with pytest.raises(GinkgoError):
            ResidualNorm(1e-2, baseline="energy_norm")

    def test_negative_factor(self):
        with pytest.raises(GinkgoError):
            ResidualNorm(-1.0)

    # Regression: a zero baseline (b = 0, or an exact initial guess)
    # used to make the threshold 0.0, so the criterion could never fire
    # and zero-RHS solves span until the iteration limit.  The criterion
    # now falls back to absolute semantics (reference 1.0).
    def test_zero_rhs_baseline_is_absolute(self):
        crit = ResidualNorm(1e-6, baseline="rhs_norm").generate(
            CriterionContext(rhs_norm=0.0)
        )
        assert not crit.check(1, 1e-3)
        assert crit.check(2, 1e-7)
        assert crit.converged

    def test_zero_initial_resnorm_baseline_is_absolute(self):
        crit = ResidualNorm(1e-6, baseline="initial_resnorm").generate(
            CriterionContext(initial_resnorm=0.0)
        )
        assert crit.check(1, 0.0)

    def test_mixed_zero_columns_fall_back_per_column(self):
        crit = ResidualNorm(1e-2, baseline="rhs_norm").generate(
            CriterionContext(rhs_norm=np.array([10.0, 0.0]))
        )
        # Column 0 is relative (threshold 0.1); column 1 absolute (1e-2).
        assert not crit.check(1, np.array([0.05, 0.5]))
        assert crit.check(2, np.array([0.05, 1e-3]))

    def test_zero_rhs_solve_converges(self, ref, spd_small):
        from repro.ginkgo.matrix import Csr, Dense
        from repro.ginkgo.solver import Cg

        mtx = Csr.from_scipy(ref, spd_small)
        n = mtx.size.rows
        b = Dense.zeros(ref, (n, 1), np.float64)
        x = Dense.zeros(ref, (n, 1), np.float64)
        solver = Cg(
            ref, criteria=Iteration(200) | ResidualNorm(1e-8)
        ).generate(mtx)
        solver.apply(b, x)
        assert solver.converged
        assert solver.num_iterations == 0
        np.testing.assert_array_equal(x.to_numpy(), 0.0)


class TestTime:
    def test_stops_after_simulated_time(self):
        clock = SimClock(NVIDIA_A100, noisy=False)
        context = CriterionContext(clock=clock, start_time=clock.now)
        crit = Time(1e-3).generate(context)
        assert not crit.check(1, 1.0)
        clock.advance(2e-3)
        assert crit.check(2, 1.0)
        assert not crit.converged

    def test_no_clock_never_stops(self):
        crit = Time(1e-9).generate(CriterionContext(clock=None))
        assert not crit.check(100, 1.0)

    def test_invalid_limit(self):
        with pytest.raises(GinkgoError):
            Time(0.0)


class TestCombined:
    def test_or_semantics(self):
        context = CriterionContext(rhs_norm=1.0)
        combined = (Iteration(10) | ResidualNorm(1e-3)).generate(context)
        assert not combined.check(1, 1.0)
        assert combined.check(2, 1e-4)  # residual criterion fires
        assert combined.converged

    def test_iteration_side_does_not_set_converged(self):
        context = CriterionContext(rhs_norm=1.0)
        combined = (Iteration(2) | ResidualNorm(1e-12)).generate(context)
        assert combined.check(2, 1.0)
        assert not combined.converged

    def test_pipe_flattens(self):
        combined = Iteration(1) | ResidualNorm(1e-3) | Time(1.0)
        assert isinstance(combined, Combined)
        assert len(combined.factories) == 3

    def test_empty_rejected(self):
        with pytest.raises(GinkgoError):
            Combined([])


class TestConvergenceLogger:
    def test_reset_on_new_apply(self):
        logger = ConvergenceLogger()
        logger.on_iteration_complete(None, iteration=3, residual_norm=0.5)
        logger.on_apply_started(None)
        assert logger.num_iterations == 0
        assert logger.residual_norms == []

    def test_reduction(self):
        logger = ConvergenceLogger()
        logger.on_iteration_complete(None, iteration=1, residual_norm=10.0)
        logger.on_iteration_complete(None, iteration=2, residual_norm=1.0)
        assert logger.reduction == pytest.approx(0.1)

    def test_repr_mentions_state(self):
        logger = ConvergenceLogger()
        logger.on_converged(None, iteration=7, residual_norm=1e-9)
        assert "iterations=7" in repr(logger)
        assert "converged=True" in repr(logger)


class TestRecordLogger:
    def test_counts(self):
        logger = RecordLogger()
        logger.on_iteration_complete(None, iteration=1)
        logger.on_iteration_complete(None, iteration=2)
        logger.on_converged(None, iteration=2)
        assert logger.count("iteration_complete") == 2
        assert logger.count("converged") == 1
        assert logger.count("apply_started") == 0


class TestStreamLogger:
    def test_writes_iterations(self):
        stream = io.StringIO()
        logger = StreamLogger(stream=stream)
        logger.on_iteration_complete(None, iteration=2, residual_norm=0.25)
        assert "iteration 2" in stream.getvalue()
        assert "2.5" in stream.getvalue()

    def test_every_filter(self):
        stream = io.StringIO()
        logger = StreamLogger(stream=stream, every=10)
        for i in range(1, 21):
            logger.on_iteration_complete(None, iteration=i)
        assert stream.getvalue().count("iteration") == 2

    def test_invalid_every(self):
        with pytest.raises(ValueError):
            StreamLogger(every=0)
