"""Degenerate stopping cases: zero RHS, exact initial guess, odd layouts.

A zero right-hand side makes the relative-residual baseline zero; the
criterion clamps it to 1.0 so the check is well defined and the solver
stops at iteration 0 instead of dividing by zero.  An exact initial guess
gives a zero initial residual with a nonzero baseline — also iteration 0.
Every solver (scalar and batched) must handle both without breakdown.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.ginkgo.batch import (
    BatchBicgstab,
    BatchCg,
    BatchCsr,
    BatchDense,
    BatchGmres,
)
from repro.ginkgo.log import ConvergenceLogger
from repro.ginkgo.matrix import Csr, Dense
from repro.ginkgo.solver import (
    Bicg,
    Bicgstab,
    CbGmres,
    Cg,
    Cgs,
    Fcg,
    Gmres,
    Idr,
    Ir,
    Minres,
)
from repro.ginkgo.stop import Iteration, ResidualNorm

SCALAR_SOLVERS = {
    "cg": Cg,
    "fcg": Fcg,
    "cgs": Cgs,
    "bicg": Bicg,
    "bicgstab": Bicgstab,
    "gmres": Gmres,
    "cb_gmres": CbGmres,
    "idr": Idr,
    "minres": Minres,
    "ir": Ir,
}

BATCH_SOLVERS = {
    "batch_cg": BatchCg,
    "batch_bicgstab": BatchBicgstab,
    "batch_gmres": BatchGmres,
}


def crit():
    return Iteration(100) | ResidualNorm(1e-9, baseline="rhs_norm")


def spd(n=24):
    return sp.diags(
        [-np.ones(n - 1), 4.0 * np.ones(n), -np.ones(n - 1)], [-1, 0, 1]
    ).tocsr()


@pytest.mark.parametrize("name", sorted(SCALAR_SOLVERS), ids=str)
class TestScalarStopping:
    def test_zero_rhs_stops_at_iteration_zero(self, ref, name):
        mat = Csr.from_scipy(ref, spd())
        solver = SCALAR_SOLVERS[name](ref, criteria=crit()).generate(mat)
        b = Dense(ref, np.zeros((24, 1)))
        x = Dense(ref, np.zeros((24, 1)))
        solver.apply(b, x)
        assert solver.converged
        assert not solver.breakdown
        assert solver.num_iterations == 0
        assert solver.final_residual_norm == 0.0
        assert (x._data == 0.0).all()

    def test_exact_initial_guess_stops_at_iteration_zero(self, ref, rng, name):
        mat = spd()
        exact = rng.standard_normal((24, 1))
        b = mat @ exact
        solver = SCALAR_SOLVERS[name](
            ref, criteria=crit()
        ).generate(Csr.from_scipy(ref, mat))
        x = Dense(ref, exact.copy())
        logger = ConvergenceLogger()
        solver.add_logger(logger)
        solver.apply(Dense(ref, b), x)
        assert solver.converged
        assert solver.num_iterations == 0
        # Iteration 0 is the only logged residual, and the guess survives
        # untouched.
        assert len(logger.residual_norms) == 1
        np.testing.assert_array_equal(x._data, exact)


@pytest.mark.parametrize("name", sorted(BATCH_SOLVERS), ids=str)
class TestBatchStopping:
    def test_zero_rhs_converges_every_system(self, ref, name):
        n, K = 16, 4
        mat = BatchCsr.from_scipy_list(ref, [spd(n) for _ in range(K)])
        solver = BATCH_SOLVERS[name](ref, criteria=crit()).generate(mat)
        b = BatchDense.zeros(ref, K, (n, 1), np.float64)
        x = BatchDense.zeros(ref, K, (n, 1), np.float64)
        solver.apply(b, x)
        status = solver.status
        assert status.all_converged
        assert (status.num_iterations == 0).all()
        assert (x._data == 0.0).all()

    def test_exact_initial_guess_converges_every_system(self, ref, rng, name):
        n, K = 16, 4
        mats = [spd(n) for _ in range(K)]
        mat = BatchCsr.from_scipy_list(ref, mats)
        exact = [rng.standard_normal((n, 1)) for _ in range(K)]
        b = BatchDense.from_dense_list(
            ref, [m @ e for m, e in zip(mats, exact)]
        )
        solver = BATCH_SOLVERS[name](ref, criteria=crit()).generate(mat)
        x = BatchDense.from_dense_list(ref, exact)
        solver.apply(b, x)
        status = solver.status
        assert status.all_converged
        assert (status.num_iterations == 0).all()
        np.testing.assert_array_equal(x._data, np.stack(exact))

    def test_mixed_trivial_and_real_systems(self, ref, rng, name):
        # System 0 has a zero RHS, the rest need real work; the masked
        # stopping logic must retire system 0 at iteration 0 only.
        n, K = 16, 3
        mats = [spd(n) for _ in range(K)]
        mat = BatchCsr.from_scipy_list(ref, mats)
        rhs = [np.zeros((n, 1))] + [
            rng.standard_normal((n, 1)) for _ in range(K - 1)
        ]
        solver = BATCH_SOLVERS[name](ref, criteria=crit()).generate(mat)
        x = BatchDense.zeros(ref, K, (n, 1), np.float64)
        solver.apply(BatchDense.from_dense_list(ref, rhs), x)
        status = solver.status
        assert status.all_converged
        assert status.num_iterations[0] == 0
        assert (status.num_iterations[1:] > 0).all()


class TestArrayLayouts:
    """Fortran-order and non-contiguous inputs must behave like C-order."""

    def test_fortran_order_dense_matches_c_order(self, ref, rng):
        arr = rng.standard_normal((20, 3))
        c = Dense(ref, arr)
        f = Dense(ref, np.asfortranarray(arr))
        assert f._data.flags["C_CONTIGUOUS"]
        assert f._data.tobytes() == c._data.tobytes()

    def test_noncontiguous_dense_matches_contiguous(self, ref, rng):
        arr = rng.standard_normal((40, 6))
        sliced = arr[::2, ::2]
        assert not sliced.flags["C_CONTIGUOUS"]
        d = Dense(ref, sliced)
        assert d._data.flags["C_CONTIGUOUS"]
        assert d._data.tobytes() == np.ascontiguousarray(sliced).tobytes()

    def test_solve_with_fortran_order_rhs(self, ref, rng):
        mat = spd()
        exact = rng.standard_normal((24, 1))
        b = mat @ exact

        def solve(rhs_arr, guess_arr):
            solver = Cg(ref, criteria=crit()).generate(
                Csr.from_scipy(ref, mat)
            )
            x = Dense(ref, guess_arr)
            solver.apply(Dense(ref, rhs_arr), x)
            return solver, x._data.copy()

        s_c, x_c = solve(b, np.zeros((24, 1)))
        s_f, x_f = solve(
            np.asfortranarray(b), np.asfortranarray(np.zeros((24, 1)))
        )
        assert s_f.num_iterations == s_c.num_iterations
        assert x_f.tobytes() == x_c.tobytes()

    def test_solve_with_strided_rhs(self, ref, rng):
        mat = spd()
        wide = rng.standard_normal((24, 4))
        strided = wide[:, ::3]  # (24, 2) with a column stride
        assert not strided.flags["C_CONTIGUOUS"]

        solver = Cg(ref, criteria=crit()).generate(Csr.from_scipy(ref, mat))
        x = Dense(ref, np.zeros((24, 2)))
        solver.apply(Dense(ref, strided), x)
        assert solver.converged

        reference = Cg(ref, criteria=crit()).generate(
            Csr.from_scipy(ref, mat)
        )
        xr = Dense(ref, np.zeros((24, 2)))
        reference.apply(Dense(ref, np.ascontiguousarray(strided)), xr)
        assert x._data.tobytes() == xr._data.tobytes()
