"""Triangular and direct solver tests."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.ginkgo import BadDimension
from repro.ginkgo.exceptions import GinkgoError
from repro.ginkgo.matrix import Csr, Dense
from repro.ginkgo.solver import Direct, LowerTrs, UpperTrs


@pytest.fixture
def lower_tri(spd_small):
    return sp.tril(spd_small).tocsr()


@pytest.fixture
def upper_tri(spd_small):
    return sp.triu(spd_small).tocsr()


class TestTriangular:
    def test_lower_solve(self, ref, lower_tri, rng):
        xstar = rng.standard_normal((lower_tri.shape[0], 1))
        solver = LowerTrs(ref).generate(Csr.from_scipy(ref, lower_tri))
        x = Dense.zeros(ref, xstar.shape, np.float64)
        solver.apply(Dense(ref, lower_tri @ xstar), x)
        np.testing.assert_allclose(np.asarray(x), xstar, atol=1e-10)

    def test_upper_solve(self, ref, upper_tri, rng):
        xstar = rng.standard_normal((upper_tri.shape[0], 1))
        solver = UpperTrs(ref).generate(Csr.from_scipy(ref, upper_tri))
        x = Dense.zeros(ref, xstar.shape, np.float64)
        solver.apply(Dense(ref, upper_tri @ xstar), x)
        np.testing.assert_allclose(np.asarray(x), xstar, atol=1e-10)

    def test_multi_rhs(self, ref, lower_tri, rng):
        xstar = rng.standard_normal((lower_tri.shape[0], 4))
        solver = LowerTrs(ref).generate(Csr.from_scipy(ref, lower_tri))
        x = Dense.zeros(ref, xstar.shape, np.float64)
        solver.apply(Dense(ref, lower_tri @ xstar), x)
        np.testing.assert_allclose(np.asarray(x), xstar, atol=1e-10)

    def test_unit_diagonal_overrides_stored(self, ref, rng):
        strict = sp.csr_matrix(
            np.tril(rng.standard_normal((6, 6)), -1)
        )
        solver = LowerTrs(ref, unit_diagonal=True).generate(
            Csr.from_scipy(ref, strict)
        )
        dense = strict.toarray() + np.eye(6)
        xstar = rng.standard_normal((6, 1))
        x = Dense.zeros(ref, (6, 1), np.float64)
        solver.apply(Dense(ref, dense @ xstar), x)
        np.testing.assert_allclose(np.asarray(x), xstar, atol=1e-10)

    def test_zero_diagonal_rejected_without_unit_flag(self, ref):
        strict = sp.csr_matrix(np.array([[0.0, 0.0], [1.0, 0.0]]))
        with pytest.raises(GinkgoError, match="diagonal"):
            LowerTrs(ref).generate(Csr.from_scipy(ref, strict))

    def test_square_required(self, ref, rect_small):
        with pytest.raises(BadDimension):
            LowerTrs(ref).generate(Csr.from_scipy(ref, rect_small))

    def test_advanced_apply(self, ref, lower_tri, rng):
        xstar = rng.standard_normal((lower_tri.shape[0], 1))
        solver = LowerTrs(ref).generate(Csr.from_scipy(ref, lower_tri))
        x0 = rng.standard_normal(xstar.shape)
        x = Dense(ref, x0)
        solver.apply_advanced(2.0, Dense(ref, lower_tri @ xstar), -1.0, x)
        np.testing.assert_allclose(np.asarray(x), 2 * xstar - x0, atol=1e-9)

    def test_charges_clock(self, ref, lower_tri, rng):
        solver = LowerTrs(ref).generate(Csr.from_scipy(ref, lower_tri))
        b = Dense(ref, rng.standard_normal((lower_tri.shape[0], 1)))
        x = Dense.zeros(ref, (lower_tri.shape[0], 1), np.float64)
        before = ref.clock.now
        solver.apply(b, x)
        assert ref.clock.now > before


class TestDirect:
    def test_solves_general_system(self, ref, general_small, rng):
        xstar = rng.standard_normal((general_small.shape[0], 1))
        solver = Direct(ref).generate(Csr.from_scipy(ref, general_small))
        x = Dense.zeros(ref, xstar.shape, np.float64)
        solver.apply(Dense(ref, general_small @ xstar), x)
        np.testing.assert_allclose(np.asarray(x), xstar, atol=1e-9)

    def test_multi_rhs(self, ref, general_small, rng):
        xstar = rng.standard_normal((general_small.shape[0], 3))
        solver = Direct(ref).generate(Csr.from_scipy(ref, general_small))
        x = Dense.zeros(ref, xstar.shape, np.float64)
        solver.apply(Dense(ref, general_small @ xstar), x)
        np.testing.assert_allclose(np.asarray(x), xstar, atol=1e-9)

    def test_factorisation_reused_across_applies(self, ref, general_small, rng):
        solver = Direct(ref).generate(Csr.from_scipy(ref, general_small))
        b = Dense(ref, rng.standard_normal((general_small.shape[0], 1)))
        x = Dense.zeros(ref, (general_small.shape[0], 1), np.float64)
        solver.apply(b, x)
        t_factorised = ref.clock.now
        solver.apply(b, x)
        second_apply = ref.clock.now - t_factorised
        # The second apply skips factorisation: much cheaper than total.
        assert second_apply < t_factorised / 2

    def test_fill_in_reported(self, ref, general_small):
        solver = Direct(ref).generate(Csr.from_scipy(ref, general_small))
        assert solver.fill_in_nnz >= general_small.nnz

    def test_square_required(self, ref, rect_small):
        with pytest.raises(BadDimension):
            Direct(ref).generate(Csr.from_scipy(ref, rect_small))

    def test_advanced_apply(self, ref, general_small, rng):
        xstar = rng.standard_normal((general_small.shape[0], 1))
        solver = Direct(ref).generate(Csr.from_scipy(ref, general_small))
        x0 = rng.standard_normal(xstar.shape)
        x = Dense(ref, x0)
        solver.apply_advanced(3.0, Dense(ref, general_small @ xstar), 1.0, x)
        np.testing.assert_allclose(np.asarray(x), 3 * xstar + x0, atol=1e-8)
