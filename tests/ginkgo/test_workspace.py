"""Solver workspace pool: reuse, invalidation, and numerics preservation."""

import numpy as np
import pytest

from repro.ginkgo import cachestats
from repro.ginkgo.log import ConvergenceLogger
from repro.ginkgo.matrix import Csr, Dense
from repro.ginkgo.solver import (
    Bicg,
    Bicgstab,
    CbGmres,
    Cg,
    Cgs,
    Fcg,
    Gmres,
    Idr,
    Ir,
    Minres,
    Workspace,
)
from repro.ginkgo.stop import Iteration, ResidualNorm

ALL_SOLVERS = [Cg, Fcg, Cgs, Bicg, Bicgstab, Gmres, Minres, Idr, Ir, CbGmres]
CRIT = Iteration(300) | ResidualNorm(1e-10)


class TestWorkspacePool:
    def test_same_key_returns_same_buffer(self, ref):
        ws = Workspace(ref)
        a = ws.dense("t", (6, 1), np.float64)
        b = ws.dense("t", (6, 1), np.float64)
        assert b is a
        assert b._data is a._data

    def test_size_change_reallocates(self, ref):
        ws = Workspace(ref)
        a = ws.dense("t", (6, 1), np.float64)
        b = ws.dense("t", (9, 1), np.float64)
        assert b is not a
        assert b.size.rows == 9

    def test_dtype_change_reallocates(self, ref):
        ws = Workspace(ref)
        a = ws.dense("t", (6, 1), np.float64)
        b = ws.dense("t", (6, 1), np.float32)
        assert b is not a
        assert b.dtype == np.float32

    def test_zero_refill_on_reuse(self, ref):
        ws = Workspace(ref)
        a = ws.dense("t", (4, 1), np.float64, zero=True)
        a._data[:] = 7.0
        b = ws.dense("t", (4, 1), np.float64, zero=True)
        assert b is a
        np.testing.assert_array_equal(np.asarray(b), 0.0)

    def test_nonzero_reuse_keeps_stale_contents(self, ref):
        # zero=False hands back the buffer as-is; callers must overwrite.
        ws = Workspace(ref)
        a = ws.dense("t", (4, 1), np.float64)
        a._data[:] = 7.0
        b = ws.dense("t", (4, 1), np.float64)
        np.testing.assert_array_equal(np.asarray(b), 7.0)

    def test_dense_like_copies_values(self, ref):
        ws = Workspace(ref)
        src = Dense(ref, np.arange(5, dtype=np.float64).reshape(5, 1))
        dst = ws.dense_like("c", src)
        np.testing.assert_array_equal(np.asarray(dst), np.asarray(src))
        # Writing the pooled copy must not alias the source.
        dst._data[:] = -1.0
        assert np.asarray(src)[2, 0] == 2.0

    def test_array_pool_always_zeroed(self, ref):
        ws = Workspace(ref)
        a = ws.array("h", (3, 4))
        a[:] = 5.0
        b = ws.array("h", (3, 4))
        assert b is a
        np.testing.assert_array_equal(b, 0.0)
        c = ws.array("h", (2, 2))
        assert c.shape == (2, 2)

    def test_clear_releases_everything(self, ref):
        ws = Workspace(ref)
        ws.dense("a", (8, 1), np.float64)
        ws.array("h", (4,))
        assert ws.num_buffers > 0 and ws.bytes_held > 0
        ws.clear()
        assert ws.num_buffers == 0
        assert ws.bytes_held == 0
        # The pool is usable again after clear().
        ws.dense("a", (8, 1), np.float64)

    def test_column_view_writes_through(self, ref):
        ws = Workspace(ref)
        block = Dense.zeros(ref, (4, 3), np.float64)
        col = ws.column_view("col", block, 1)
        col._data[:] = 9.0
        assert np.asarray(block)[:, 1].tolist() == [9.0] * 4
        assert np.asarray(block)[:, 0].tolist() == [0.0] * 4
        # Same owner + index is served from the pool.
        assert ws.column_view("col", block, 1) is col

    def test_workspace_hits_counted(self, ref, spd_small, rng):
        mtx = Csr.from_scipy(ref, spd_small)
        solver = Cg(ref, criteria=CRIT).generate(mtx)
        b = Dense(ref, spd_small @ rng.standard_normal((spd_small.shape[0], 1)))
        cachestats.reset()
        solver.apply(b, Dense.zeros(ref, (spd_small.shape[0], 1), np.float64))
        hits1, misses1 = cachestats.counts("workspace")
        assert misses1 > 0  # cold apply populates the pool
        solver.apply(b, Dense.zeros(ref, (spd_small.shape[0], 1), np.float64))
        hits2, misses2 = cachestats.counts("workspace")
        assert misses2 == misses1  # warm apply allocates nothing new
        assert hits2 > hits1


class TestSolverReuseNumerics:
    @pytest.mark.parametrize("factory_cls", ALL_SOLVERS)
    def test_residual_history_identical_on_reuse(
        self, factory_cls, ref, spd_small, rng
    ):
        """A warm (pooled) apply must be bit-identical to a cold one."""
        xstar = rng.standard_normal((spd_small.shape[0], 1))
        b_np = spd_small @ xstar

        def run(solver):
            logger = ConvergenceLogger()
            solver.add_logger(logger)
            x = Dense.zeros(ref, (spd_small.shape[0], 1), np.float64)
            solver.apply(Dense(ref, b_np), x)
            solver.remove_logger(logger)
            return list(logger.residual_norms), np.asarray(x).copy()

        mtx = Csr.from_scipy(ref, spd_small)
        solver = factory_cls(ref, criteria=CRIT).generate(mtx)
        cold_hist, cold_x = run(solver)
        warm_hist, warm_x = run(solver)  # reuses the pooled workspace
        assert warm_hist == cold_hist  # exact float equality, not allclose
        np.testing.assert_array_equal(warm_x, cold_x)

        fresh = factory_cls(ref, criteria=CRIT).generate(mtx)
        fresh_hist, fresh_x = run(fresh)
        assert fresh_hist == cold_hist
        np.testing.assert_array_equal(fresh_x, cold_x)

    @pytest.mark.parametrize("factory_cls", [Gmres, CbGmres, Idr, Minres])
    def test_multi_rhs_write_back(self, factory_cls, ref, spd_small, rng):
        """Pooled column views must write the per-column solves back to x."""
        xstar = rng.standard_normal((spd_small.shape[0], 3))
        mtx = Csr.from_scipy(ref, spd_small)
        solver = factory_cls(ref, criteria=CRIT).generate(mtx)
        x = Dense.zeros(ref, (spd_small.shape[0], 3), np.float64)
        solver.apply(Dense(ref, spd_small @ xstar), x)
        np.testing.assert_allclose(np.asarray(x), xstar, atol=1e-6)
        # Warm repeat hits the pooled views and stays correct.
        x2 = Dense.zeros(ref, (spd_small.shape[0], 3), np.float64)
        solver.apply(Dense(ref, spd_small @ xstar), x2)
        np.testing.assert_array_equal(np.asarray(x2), np.asarray(x))

    def test_reuse_across_executors_is_independent(self, ref, omp, spd_small, rng):
        """Each generated solver pools on its own executor."""
        xstar = rng.standard_normal((spd_small.shape[0], 1))
        b_np = spd_small @ xstar
        results = []
        for exec_ in (ref, omp):
            mtx = Csr.from_scipy(exec_, spd_small)
            solver = Cg(exec_, criteria=CRIT).generate(mtx)
            assert solver.workspace._exec is exec_
            x = Dense.zeros(exec_, (spd_small.shape[0], 1), np.float64)
            solver.apply(Dense(exec_, b_np), x)
            results.append(np.asarray(x).copy())
        np.testing.assert_array_equal(results[0], results[1])

    def test_clear_workspace_then_solve_again(self, ref, spd_small, rng):
        xstar = rng.standard_normal((spd_small.shape[0], 1))
        b_np = spd_small @ xstar
        mtx = Csr.from_scipy(ref, spd_small)
        solver = Gmres(ref, criteria=CRIT).generate(mtx)

        def run():
            x = Dense.zeros(ref, (spd_small.shape[0], 1), np.float64)
            solver.apply(Dense(ref, b_np), x)
            return np.asarray(x).copy()

        first = run()
        solver.clear_workspace()
        assert solver.workspace.num_buffers == 0
        np.testing.assert_array_equal(run(), first)

    def test_mixed_dtype_applies_share_one_pool(self, ref, spd_small, rng):
        """float32 after float64 reallocates instead of serving stale bufs."""
        mtx64 = Csr.from_scipy(ref, spd_small)
        xstar = rng.standard_normal((spd_small.shape[0], 1))
        solver = Cg(ref, criteria=CRIT).generate(mtx64)
        x = Dense.zeros(ref, (spd_small.shape[0], 1), np.float64)
        solver.apply(Dense(ref, spd_small @ xstar), x)
        b32 = Dense(ref, (spd_small @ xstar).astype(np.float32))
        x32 = Dense.zeros(ref, (spd_small.shape[0], 1), np.float32)
        solver.apply(b32, x32)
        assert np.asarray(x32).dtype == np.float32
        np.testing.assert_allclose(
            np.asarray(x32), xstar.astype(np.float32), atol=1e-2
        )
