"""Smoke tests: the shipped examples run end to end (reduced sizes)."""

import runpy
import sys
from pathlib import Path

import numpy as np
import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _load(name: str):
    """Import an example module by path without executing main()."""
    sys.path.insert(0, str(EXAMPLES))
    try:
        module = __import__(name)
        return module
    finally:
        sys.path.pop(0)


class TestExamples:
    def test_quickstart(self, capsys):
        module = _load("quickstart")
        module.main()
        out = capsys.readouterr().out
        assert "converged:            True" in out

    def test_cross_device_portability(self, capsys):
        module = _load("cross_device_portability")
        module.main()
        out = capsys.readouterr().out
        assert "platform portability verified" in out

    def test_poisson_heat_transfer(self, capsys):
        module = _load("poisson_heat_transfer")
        module.main(nx=32)  # reduced grid for the test suite
        out = capsys.readouterr().out
        assert "converged:          True" in out
        assert "analytic centre" in out

    def test_rayleigh_ritz_eigen_on_reference(self, capsys, monkeypatch):
        module = _load("rayleigh_ritz_eigen")
        # Shrink the problem via a patched generator for test speed.
        import repro.suitesparse as ss

        monkeypatch.setattr(
            module, "mesh_delaunay",
            lambda n, seed=0: ss.mesh_delaunay(400, seed=seed),
        )
        module.main("reference")
        out = capsys.readouterr().out
        assert "Rayleigh-Ritz (dominant 4):" in out

    def test_heat_transfer_matches_analytic(self):
        module = _load("poisson_heat_transfer")
        centre = module._series_solution_centre(q=100.0, terms=99)
        # Known value ~ q * 0.0736713... for the unit square.
        assert centre == pytest.approx(100.0 * 0.0736713, rel=1e-3)

    def test_image_filtering_helpers(self):
        module = _load("image_filtering")
        image = module.make_test_image(32)
        assert image.shape == (32, 32)
        assert image.max() > 1.0  # rectangle + gradient overlap
        rendered = module.ascii_render(image)
        assert len(rendered.splitlines()) > 4
