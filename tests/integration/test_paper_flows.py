"""End-to-end integration tests reproducing the paper's code listings and
cross-device workflows."""

import numpy as np
import pytest

import repro as pg
from repro.ginkgo.mtx_io import write_mtx
from repro.suitesparse import generators as gen


@pytest.fixture
def poisson_file(tmp_path):
    matrix = gen.poisson_2d(20)  # 400 x 400 SPD
    path = tmp_path / "m1.mtx"
    write_mtx(path, matrix)
    return path, matrix


class TestListing1:
    """The paper's Listing 1, verbatim flow."""

    def test_full_flow_on_cuda_device(self, poisson_file):
        fn, matrix = poisson_file
        dev = pg.device("cuda", fresh=True)
        mtx = pg.read(device=dev, path=fn, dtype="double", format="Csr")
        n_rows = mtx.size[0]
        b = pg.as_tensor(device=dev, dim=(n_rows, 1), dtype="double",
                         fill=1.0)
        x = pg.as_tensor(device=dev, dim=(n_rows, 1), dtype="double",
                         fill=0.0)
        preconditioner = pg.preconditioner.Ilu(dev, mtx)
        solver = pg.solver.gmres(
            dev, mtx, preconditioner,
            max_iters=1000, krylov_dim=30, reduction_factor=1e-6,
        )
        logger, result = solver.apply(b, x)
        assert logger.converged
        assert logger.num_iterations <= 1000
        residual = matrix @ result.numpy() - 1.0
        assert np.linalg.norm(residual) <= 1e-5 * np.sqrt(n_rows)

    def test_flow_runs_on_every_device(self, poisson_file):
        fn, matrix = poisson_file
        for name in ("reference", "omp", "cuda", "hip"):
            dev = pg.device(name, fresh=True)
            mtx = pg.read(device=dev, path=fn, dtype="double", format="Csr")
            b = pg.as_tensor(device=dev, dim=(mtx.size[0], 1), fill=1.0)
            x = pg.as_tensor(device=dev, dim=(mtx.size[0], 1), fill=0.0)
            solver = pg.solver.cg(dev, mtx, max_iters=500,
                                  reduction_factor=1e-8)
            logger, result = solver.apply(b, x)
            assert logger.converged, name


class TestListing2:
    """The paper's Listing 2: config-solver dictionary route."""

    def test_config_dict_flow(self, poisson_file):
        fn, matrix = poisson_file
        dev = pg.device("cuda", fresh=True)
        mtx = pg.read(device=dev, path=fn, dtype="double", format="Csr")
        b = pg.as_tensor(device=dev, dim=(mtx.size[0], 1), fill=1.0)
        config = pg.build_config(
            solver="solver::Gmres",
            preconditioner={"type": "preconditioner::Jacobi",
                            "max_block_size": 1},
            max_iters=1000,
            reduction_factor=1e-6,
            krylov_dim=30,
        )
        handle = pg.config_solver(dev, mtx, config)
        x = pg.as_tensor(device=dev, dim=(mtx.size[0], 1), fill=0.0)
        logger, result = handle.apply(b, x)
        assert logger.converged

    def test_solve_one_liner(self, poisson_file):
        fn, matrix = poisson_file
        dev = pg.device("hip", fresh=True)
        mtx = pg.read(device=dev, path=fn)
        b = pg.as_tensor(device=dev, dim=(mtx.size[0], 1), fill=1.0)
        logger, x = pg.solve(dev, mtx, b, solver="cg", preconditioner="ic",
                             max_iters=500, reduction_factor=1e-9)
        assert logger.converged


class TestCrossDevice:
    def test_data_roundtrip_preserves_solution(self, poisson_file):
        fn, matrix = poisson_file
        cpu = pg.device("omp", fresh=True)
        gpu = pg.device("cuda", fresh=True)
        mtx_gpu = pg.read(device=gpu, path=fn)
        b_cpu = pg.as_tensor(np.ones((matrix.shape[0], 1)), device=cpu)
        b_gpu = b_cpu.to(gpu)
        x_gpu = pg.as_tensor(device=gpu, dim=(matrix.shape[0], 1), fill=0.0)
        solver = pg.solver.cg(gpu, mtx_gpu, max_iters=500,
                              reduction_factor=1e-9)
        logger, x = solver.apply(b_gpu, x_gpu)
        x_back = x.to(cpu)
        residual = matrix @ np.asarray(x_back) - 1.0
        assert np.linalg.norm(residual) < 1e-5

    def test_multiple_executors_coexist(self):
        # Section 4.1: "a program can utilize multiple executors
        # simultaneously".
        cuda0 = pg.device("cuda", id=0, fresh=True)
        cuda1 = pg.device("cuda", id=1, fresh=True)
        t0 = pg.as_tensor(np.ones(100), device=cuda0)
        t1 = t0.to(cuda1)
        assert t0.device is not t1.device
        np.testing.assert_array_equal(t0.numpy(), t1.numpy())


class TestSimulatedTimeline:
    def test_gpu_solve_produces_timeline(self, poisson_file):
        fn, _ = poisson_file
        dev = pg.device("cuda", fresh=True)
        mtx = pg.read(device=dev, path=fn)
        b = pg.as_tensor(device=dev, dim=(mtx.size[0], 1), fill=1.0)
        x = pg.as_tensor(device=dev, dim=(mtx.size[0], 1), fill=0.0)
        start = dev.clock.now
        solver = pg.solver.cg(dev, mtx, max_iters=200,
                              reduction_factor=1e-8)
        logger, _ = solver.apply(b, x)
        elapsed = dev.clock.now - start
        assert elapsed > 0
        # Per-iteration cost is dominated by launches: sanity window.
        per_iter = elapsed / max(logger.num_iterations, 1)
        assert 1e-6 < per_iter < 1e-2

    def test_device_crossover_matches_paper(self, poisson_file, tmp_path):
        # Paper Fig. 4: "it is more efficient to use CPU instead of GPU
        # for matrices with low NNZ" — and the GPU wins once the matrix
        # is large enough to amortise launch latency.
        fn_small, _ = poisson_file  # 400 dofs
        big = gen.poisson_2d(150)  # 22.5k dofs, ~112k nnz
        fn_big = tmp_path / "big.mtx"
        write_mtx(fn_big, big)

        def solve_time(device_name, path):
            dev = pg.device(device_name, fresh=True)
            mtx = pg.read(device=dev, path=path)
            b = pg.as_tensor(device=dev, dim=(mtx.size[0], 1), fill=1.0)
            x = pg.as_tensor(device=dev, dim=(mtx.size[0], 1), fill=0.0)
            start = dev.clock.now
            pg.solver.cg(dev, mtx, max_iters=100,
                         reduction_factor=None).apply(b, x)
            return dev.clock.now - start

        assert solve_time("reference", fn_small) < solve_time(
            "cuda", fn_small
        )
        assert solve_time("cuda", fn_big) < solve_time("reference", fn_big)


class TestHalfPrecisionEndToEnd:
    def test_half_precision_spmv_chain(self, poisson_file):
        fn, matrix = poisson_file
        dev = pg.device("cuda", fresh=True)
        mtx = pg.read(device=dev, path=fn, dtype="half")
        assert mtx.dtype == np.float16
        b = pg.as_tensor(device=dev, dim=(mtx.size[0], 1), dtype="half",
                         fill=1.0)
        out = pg.as_tensor(device=dev, dim=(mtx.size[0], 1), dtype="half",
                           fill=0.0)
        mtx.apply(b.dense, out.dense)
        expect = matrix @ np.ones((matrix.shape[0], 1))
        np.testing.assert_allclose(
            out.numpy().astype(np.float64), expect, rtol=0.05, atol=0.05
        )
