"""Simulated-clock tests."""

import numpy as np
import pytest

from repro.perfmodel import (
    INTEL_XEON_8368,
    NVIDIA_A100,
    KernelCost,
    SimClock,
    spmv_cost,
)


def _clock(**kwargs) -> SimClock:
    kwargs.setdefault("noisy", False)
    return SimClock(NVIDIA_A100, **kwargs)


class TestSimClock:
    def test_record_advances_time(self):
        clock = _clock()
        cost = spmv_cost("csr", 1000, 1000, 10000, 4, 4)
        before = clock.now
        duration = clock.record(cost)
        assert clock.now == pytest.approx(before + duration)
        assert duration > 0

    def test_noiseless_is_deterministic(self):
        cost = spmv_cost("csr", 1000, 1000, 10000, 4, 4)
        a = _clock().record(cost)
        b = _clock().record(cost)
        assert a == b

    def test_noise_is_reproducible_per_seed(self):
        cost = spmv_cost("csr", 1000, 1000, 10000, 4, 4)
        a = SimClock(NVIDIA_A100, seed=7).record(cost)
        b = SimClock(NVIDIA_A100, seed=7).record(cost)
        c = SimClock(NVIDIA_A100, seed=8).record(cost)
        assert a == b
        assert a != c

    def test_launch_latency_dominates_tiny_kernels(self):
        clock = _clock()
        tiny = clock.kernel_time(KernelCost("k", flops=2, bytes=16, launches=1))
        assert tiny >= NVIDIA_A100.launch_latency

    def test_bandwidth_bound_scaling(self):
        # Doubling the bytes of a large kernel ~doubles its time.
        clock = _clock()
        t1 = clock.kernel_time(KernelCost("k", 0, 1e9, launches=1))
        t2 = clock.kernel_time(KernelCost("k", 0, 2e9, launches=1))
        assert t2 / t1 == pytest.approx(2.0, rel=0.05)

    def test_counters_accumulate(self):
        clock = _clock()
        cost = spmv_cost("csr", 100, 100, 1000, 4, 4)
        clock.record(cost)
        clock.record(cost)
        assert clock.flops_done == 2 * cost.flops
        assert clock.bytes_moved == 2 * cost.bytes
        assert clock.kernel_count == 2 * cost.launches

    def test_reset(self):
        clock = _clock()
        clock.record(spmv_cost("csr", 100, 100, 1000, 4, 4))
        clock.reset()
        assert clock.now == 0.0
        assert clock.kernel_count == 0
        assert not clock.events

    def test_event_log_disabled_by_default(self):
        clock = _clock()
        clock.record(spmv_cost("csr", 100, 100, 1000, 4, 4))
        assert clock.events == []

    def test_event_log_records_details(self):
        clock = _clock()
        clock.enable_event_log()
        cost = spmv_cost("csr", 100, 100, 1000, 4, 4)
        clock.record(cost)
        (event,) = clock.events
        assert event.name == "spmv_csr"
        assert event.end == pytest.approx(event.start + event.duration)
        assert event.gflops > 0

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            _clock().advance(-1.0)

    def test_region_measures_span(self):
        clock = _clock()
        with clock.region() as span:
            clock.record(spmv_cost("csr", 100, 100, 1000, 4, 4))
            clock.record(spmv_cost("csr", 100, 100, 1000, 4, 4))
        assert span.elapsed == pytest.approx(clock.now)

    def test_synchronize_uses_library_sync_overhead(self):
        clock = SimClock(NVIDIA_A100, library="cupy", noisy=False)
        before = clock.now
        clock.synchronize()
        assert clock.now - before == pytest.approx(
            clock.library.sync_overhead
        )

    def test_single_threaded_library_uses_one_core(self):
        cost = spmv_cost("csr", 100000, 100000, 1000000, 4, 4)
        scipy_clock = SimClock(
            INTEL_XEON_8368, library="scipy", num_threads=32, noisy=False
        )
        ginkgo_clock = SimClock(
            INTEL_XEON_8368, library="ginkgo", num_threads=32, noisy=False
        )
        # SciPy ignores the 32 threads; Ginkgo uses them.
        assert scipy_clock.kernel_time(cost) > 5 * ginkgo_clock.kernel_time(cost)
