"""Non-blocking comm model: CommRequest accounting and model edges."""

from __future__ import annotations

import pytest

from repro.ginkgo.distributed import Communicator
from repro.perfmodel.comm import (
    ETHERNET_CLUSTER,
    INTRA_NODE,
    CommRequest,
    allreduce_time,
    halo_exchange_time,
)


class TestModelEdges:
    def test_allreduce_rounds_non_power_of_two(self):
        # Recursive doubling: ceil(log2 K) rounds, so 5..8 ranks all
        # cost 3 rounds.
        t5 = allreduce_time(64, 5, INTRA_NODE)
        t8 = allreduce_time(64, 8, INTRA_NODE)
        assert t5 == pytest.approx(t8)
        assert t5 == pytest.approx(3.0 * INTRA_NODE.message_time(64))
        assert allreduce_time(64, 9, INTRA_NODE) == pytest.approx(
            4.0 * INTRA_NODE.message_time(64)
        )

    def test_zero_byte_halo_still_pays_latency(self):
        # An empty payload is still num_messages envelopes on the wire.
        t = halo_exchange_time(0, 4, ETHERNET_CLUSTER)
        assert t == pytest.approx(4 * ETHERNET_CLUSTER.latency)
        assert halo_exchange_time(0, 0, ETHERNET_CLUSTER) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            allreduce_time(-1, 4)
        with pytest.raises(ValueError):
            allreduce_time(8, 0)
        with pytest.raises(ValueError):
            halo_exchange_time(-1, 2)
        with pytest.raises(ValueError):
            halo_exchange_time(8, -1)


class TestCommRequest:
    def test_fully_exposed_without_overlap(self, ref):
        req = CommRequest(ref.clock, 1e-3, "xchg")
        before = ref.clock.now
        exposed = req.wait()
        assert exposed == pytest.approx(1e-3)
        assert req.hidden == 0.0
        assert ref.clock.now == pytest.approx(before + 1e-3)

    def test_fully_hidden_behind_compute(self, ref):
        req = CommRequest(ref.clock, 1e-3, "xchg")
        ref.clock.advance(5e-3, category="compute", label="spmv")
        before = ref.clock.now
        exposed = req.wait()
        assert exposed == 0.0
        assert req.hidden == pytest.approx(1e-3)
        assert ref.clock.now == before  # nothing charged

    def test_partial_overlap_charges_remainder(self, ref):
        req = CommRequest(ref.clock, 1e-3, "xchg")
        ref.clock.advance(4e-4, category="compute", label="spmv")
        before = ref.clock.now
        exposed = req.wait()
        assert exposed == pytest.approx(6e-4)
        assert req.hidden == pytest.approx(4e-4)
        assert ref.clock.now == pytest.approx(before + 6e-4)
        assert req.progress() == 1.0

    def test_wait_is_idempotent(self, ref):
        req = CommRequest(ref.clock, 1e-3, "xchg")
        first = req.wait()
        before = ref.clock.now
        assert req.wait() == first
        assert ref.clock.now == before

    def test_progress_tracks_elapsed_fraction(self, ref):
        req = CommRequest(ref.clock, 1e-3, "xchg")
        assert req.progress() == 0.0
        ref.clock.advance(5e-4, category="compute")
        assert req.progress() == pytest.approx(0.5)
        ref.clock.advance(1e-2, category="compute")
        assert req.progress() == 1.0

    def test_zero_second_request_is_complete(self, ref):
        req = CommRequest(ref.clock, 0.0, "xchg")
        assert req.progress() == 1.0
        assert req.wait() == 0.0

    def test_rejects_negative_duration(self, ref):
        with pytest.raises(ValueError):
            CommRequest(ref.clock, -1.0, "xchg")

    def test_concurrent_requests_share_the_window(self, ref):
        # Two in-flight transfers both progress against the same elapsed
        # compute: the model's documented wire-sharing behaviour.
        a = CommRequest(ref.clock, 1e-3, "a")
        b = CommRequest(ref.clock, 1e-3, "b")
        ref.clock.advance(2e-3, category="compute")
        assert a.wait() == 0.0
        assert b.wait() == 0.0


class TestNonBlockingCommunicator:
    def test_iallreduce_accounting(self, ref):
        comm = Communicator(ref, 4)
        req = comm.iallreduce(64)
        assert comm.num_inflight == 1
        assert comm.num_all_reduces == 0  # counted at wait, like MPI_Wait
        ref.clock.advance(1.0, category="compute")
        req.wait()
        assert comm.num_inflight == 0
        assert comm.num_all_reduces == 1
        assert comm.bytes_all_reduced == 64
        expected = allreduce_time(64, 4, comm.network)
        assert comm.comm_seconds == pytest.approx(expected)
        assert comm.comm_hidden_seconds == pytest.approx(expected)

    def test_ihalo_exposed_time_without_overlap(self, ref):
        comm = Communicator(ref, 4)
        before = ref.clock.now
        req = comm.ihalo_exchange(1024, 6)
        req.wait()  # immediate wait: nothing hidden
        expected = halo_exchange_time(1024, 6, comm.network)
        assert ref.clock.now == pytest.approx(before + expected)
        assert comm.comm_seconds == pytest.approx(expected)
        assert comm.comm_hidden_seconds == 0.0
        assert comm.num_halo_exchanges == 1

    def test_single_rank_handles_are_free_and_uncounted(self, ref):
        comm = Communicator(ref, 1)
        before = ref.clock.now
        for req in (comm.iallreduce(1 << 20), comm.ihalo_exchange(1 << 20, 8)):
            assert req.done
            assert req.wait() == 0.0
        assert ref.clock.now == before
        assert comm.num_posted == 0
        assert comm.num_inflight == 0
        assert comm.num_all_reduces == 0
        assert comm.num_halo_exchanges == 0
        assert comm.comm_seconds == 0.0

    def test_zero_message_halo_is_trivial(self, ref):
        comm = Communicator(ref, 4)
        req = comm.ihalo_exchange(0, 0)
        assert req.done
        assert req.wait() == 0.0
        assert comm.num_posted == 0
        assert comm.num_halo_exchanges == 0

    def test_reset_counters_clears_overlap_accounting(self, ref):
        comm = Communicator(ref, 4)
        comm.iallreduce(64).wait()
        comm.ihalo_exchange(256, 3)  # left in flight on purpose
        comm.all_reduce(8)
        assert comm.comm_seconds > 0.0
        assert comm.num_posted == 2
        assert comm.num_inflight == 1
        comm.reset_counters()
        assert comm.comm_seconds == 0.0
        assert comm.comm_hidden_seconds == 0.0
        assert comm.num_posted == 0
        assert comm.num_inflight == 0
        assert comm.num_all_reduces == 0
        assert comm.bytes_all_reduced == 0

    def test_blocking_calls_accumulate_comm_seconds(self, ref):
        comm = Communicator(ref, 4)
        s1 = comm.all_reduce(64)
        s2 = comm.halo_exchange(1024, 6)
        assert comm.comm_seconds == pytest.approx(s1 + s2)
        assert comm.comm_hidden_seconds == 0.0

    def test_comm_hidden_annotation_in_trace(self):
        import repro as pg

        dev = pg.device("reference", fresh=True)
        comm = Communicator(dev, 4, network=ETHERNET_CLUSTER)
        with pg.profile(dev) as prof:
            req = comm.iallreduce(64)
            dev.clock.advance(1.0, category="compute", label="spmv")
            req.wait()
        names = [s.name for s in prof.trace.walk()]
        assert "comm_hidden" in names
