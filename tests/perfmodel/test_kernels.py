"""Kernel cost-model tests."""

import pytest

from repro.perfmodel import (
    KernelCost,
    blas1_cost,
    conversion_cost,
    dot_cost,
    factorization_cost,
    spmv_cost,
    trsv_cost,
)


class TestKernelCost:
    def test_addition_combines_components(self):
        a = KernelCost("a", flops=10, bytes=100, launches=1)
        b = KernelCost("b", flops=5, bytes=50, launches=2)
        c = a + b
        assert c.flops == 15
        assert c.bytes == 150
        assert c.launches == 3

    def test_scaled(self):
        c = KernelCost("a", flops=10, bytes=100, launches=2).scaled(3)
        assert c.flops == 30
        assert c.bytes == 300
        assert c.launches == 6


class TestSpmvCost:
    def test_flops_are_two_per_nonzero(self):
        cost = spmv_cost("csr", 100, 100, 500, 4, 4)
        assert cost.flops == 1000

    def test_multi_rhs_scales_flops(self):
        one = spmv_cost("csr", 100, 100, 500, 4, 4, num_rhs=1)
        four = spmv_cost("csr", 100, 100, 500, 4, 4, num_rhs=4)
        assert four.flops == 4 * one.flops

    def test_dtype_selected_by_value_bytes(self):
        assert spmv_cost("csr", 10, 10, 20, 2, 4).dtype_name == "float16"
        assert spmv_cost("csr", 10, 10, 20, 4, 4).dtype_name == "float32"
        assert spmv_cost("csr", 10, 10, 20, 8, 8).dtype_name == "float64"

    def test_coo_moves_more_bytes_than_csr(self):
        # COO stores two index arrays and uses atomics on the output.
        csr = spmv_cost("csr", 1000, 1000, 10000, 4, 4)
        coo = spmv_cost("coo", 1000, 1000, 10000, 4, 4)
        assert coo.bytes > csr.bytes

    def test_load_balance_adds_a_launch(self):
        classical = spmv_cost("csr", 100, 100, 500, 4, 4, strategy="classical")
        balanced = spmv_cost(
            "csr", 100, 100, 500, 4, 4, strategy="load_balance"
        )
        assert balanced.launches == classical.launches + 1

    def test_unknown_strategy_raises(self):
        with pytest.raises(ValueError, match="unknown CSR strategy"):
            spmv_cost("csr", 10, 10, 20, 4, 4, strategy="magic")

    def test_unknown_format_raises(self):
        with pytest.raises(ValueError, match="unknown SpMV format"):
            spmv_cost("bsr", 10, 10, 20, 4, 4)

    def test_negative_dimensions_raise(self):
        with pytest.raises(ValueError):
            spmv_cost("csr", -1, 10, 20, 4, 4)

    def test_all_formats_accepted(self):
        for fmt in ("csr", "coo", "ell", "sellp", "hybrid", "sparsity_csr",
                    "dense", "diagonal"):
            assert spmv_cost(fmt, 64, 64, 256, 4, 4).bytes > 0

    def test_wider_values_move_more_bytes(self):
        narrow = spmv_cost("csr", 100, 100, 1000, 4, 4)
        wide = spmv_cost("csr", 100, 100, 1000, 8, 4)
        assert wide.bytes > narrow.bytes


class TestOtherKernels:
    def test_dot_has_two_launches(self):
        assert dot_cost(1000, 8).launches == 2

    def test_blas1_vector_count_scales_bytes(self):
        two = blas1_cost("copy", 1000, 8, 2)
        three = blas1_cost("axpy", 1000, 8, 3)
        assert three.bytes == 1.5 * two.bytes

    def test_trsv_has_many_launches_for_big_matrices(self):
        small = trsv_cost(64, 640, 8, 4)
        large = trsv_cost(1 << 20, 10 << 20, 8, 4)
        assert large.launches > small.launches

    def test_factorization_kinds(self):
        for kind in ("ilu0", "ic0", "jacobi"):
            assert factorization_cost(kind, 100, 1000, 8, 4).bytes > 0
        with pytest.raises(ValueError):
            factorization_cost("qr", 100, 1000, 8, 4)

    def test_conversion_cost_positive(self):
        assert conversion_cost("csr", "coo", 100, 1000, 8, 4).bytes > 0
