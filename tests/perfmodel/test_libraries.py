"""Library-profile tests: the calibration constraints from the paper."""

import pytest

from repro.perfmodel import (
    LIBRARY_PROFILES,
    NVIDIA_A100,
    SimClock,
    get_library_profile,
    spmv_cost,
)


def _gflops(library: str, fmt: str = "csr", value_bytes: int = 4) -> float:
    clock = SimClock(NVIDIA_A100, library=library, noisy=False)
    nnz, rows = 20_000_000, 2_000_000
    cost = spmv_cost(fmt, rows, rows, nnz, value_bytes, 4)
    return cost.flops / clock.kernel_time(cost) / 1e9


class TestLibraryProfiles:
    def test_all_five_libraries_registered(self):
        assert set(LIBRARY_PROFILES) == {
            "ginkgo", "cupy", "pytorch", "tensorflow", "scipy",
        }

    def test_unknown_library_raises(self):
        with pytest.raises(KeyError, match="unknown library"):
            get_library_profile("jax")

    def test_lookup_case_insensitive(self):
        assert get_library_profile("GINKGO").name == "ginkgo"

    def test_paper_gpu_peak_ordering(self):
        # Paper section 6.1.1: pyGinkgo ~150 > PyTorch ~110 > CuPy ~85
        # > TensorFlow ~50 GFLOP/s.
        ginkgo = _gflops("ginkgo")
        pytorch = _gflops("pytorch")
        cupy = _gflops("cupy")
        tensorflow = _gflops("tensorflow", fmt="coo")
        assert ginkgo > pytorch > cupy > tensorflow

    def test_paper_gpu_peak_magnitudes(self):
        assert _gflops("ginkgo") == pytest.approx(150, rel=0.15)
        assert _gflops("pytorch") == pytest.approx(110, rel=0.15)
        assert _gflops("cupy") == pytest.approx(85, rel=0.15)
        assert _gflops("tensorflow", fmt="coo") == pytest.approx(50, rel=0.25)

    def test_pytorch_fp64_deprioritised(self):
        # The paper notes double precision in PyTorch/TF is inefficient.
        profile = get_library_profile("pytorch")
        assert profile.efficiency("gpu", "float64") < profile.efficiency(
            "gpu", "float32"
        )

    def test_scipy_is_not_parallel(self):
        assert get_library_profile("scipy").parallel_cpu is False

    def test_tensorflow_only_supports_coo(self):
        assert get_library_profile("tensorflow").supported_formats == ("coo",)

    def test_pytorch_and_tf_have_no_iterative_solvers(self):
        assert get_library_profile("pytorch").supported_solvers == ()
        assert get_library_profile("tensorflow").supported_solvers == ()

    def test_cupy_solver_list_matches_paper(self):
        # Paper section 6.2.1 lists CG, CGS, GMRES, LSQR, LSMR, MINRES.
        solvers = set(get_library_profile("cupy").supported_solvers)
        assert {"cg", "cgs", "gmres", "lsqr", "lsmr", "minres"} <= solvers

    def test_efficiency_fallback(self):
        profile = get_library_profile("cupy")
        assert profile.efficiency("cpu", "float16") == (
            profile.default_bandwidth_efficiency
        )
