"""Noise-model and binding-overhead-model tests."""

import numpy as np
import pytest

from repro.perfmodel import BindingOverheadModel, NoiseModel


class TestNoiseModel:
    def test_zero_sigma_returns_one(self):
        noise = NoiseModel(0.0)
        assert all(noise.sample() == 1.0 for _ in range(10))

    def test_mean_near_one(self):
        noise = NoiseModel(0.05, seed=3)
        samples = [noise.sample() for _ in range(5000)]
        assert np.mean(samples) == pytest.approx(1.0, abs=0.01)

    def test_spread_matches_sigma(self):
        noise = NoiseModel(0.10, seed=4)
        samples = [noise.sample() for _ in range(5000)]
        assert np.std(samples) == pytest.approx(0.10, rel=0.15)

    def test_always_positive(self):
        noise = NoiseModel(0.5, seed=5)
        assert all(noise.sample() > 0 for _ in range(1000))

    def test_reset_restarts_sequence(self):
        noise = NoiseModel(0.1, seed=6)
        first = [noise.sample() for _ in range(5)]
        noise.reset()
        second = [noise.sample() for _ in range(5)]
        assert first == second

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            NoiseModel(-0.1)


class TestBindingOverheadModel:
    def test_device_family_defaults(self):
        nvidia = BindingOverheadModel.for_device("gpu-nvidia")
        amd = BindingOverheadModel.for_device("gpu-amd")
        cpu = BindingOverheadModel.for_device("cpu")
        # AMD overhead is higher than NVIDIA (paper section 6.3.2).
        assert amd.base_overhead > nvidia.base_overhead > cpu.base_overhead

    def test_unknown_family_raises(self):
        with pytest.raises(KeyError):
            BindingOverheadModel.for_device("tpu")

    def test_sample_positive(self):
        model = BindingOverheadModel()
        assert all(model.sample() > 0 for _ in range(100))

    def test_sample_scales_with_arguments(self):
        model = BindingOverheadModel(jitter_sigma=0.0)
        assert model.sample(num_arguments=10) > model.sample(num_arguments=1)

    def test_relative_overhead_amortises(self):
        # Paper: ~30% for small kernels, <10% once kernels are long.
        model = BindingOverheadModel.for_device("gpu-nvidia")
        small = model.relative_overhead(kernel_time=12e-6)
        large = model.relative_overhead(kernel_time=1.4e-4)
        assert 0.2 < small < 0.4
        assert large < 0.1

    def test_relative_overhead_rejects_negative(self):
        with pytest.raises(ValueError):
            BindingOverheadModel().relative_overhead(-1.0)

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            BindingOverheadModel(base_overhead=-1e-6)
