"""Device-spec tests."""

import numpy as np
import pytest

from repro.perfmodel import (
    AMD_MI100,
    DEVICE_SPECS,
    GENERIC_HOST,
    INTEL_XEON_8368,
    NVIDIA_A100,
    get_device_spec,
)


class TestDeviceSpecs:
    def test_registry_contains_all_paper_devices(self):
        assert set(DEVICE_SPECS) == {"a100", "mi100", "xeon8368", "reference"}

    def test_lookup_is_case_insensitive(self):
        assert get_device_spec("A100") is NVIDIA_A100
        assert get_device_spec("Mi100") is AMD_MI100

    def test_unknown_device_raises(self):
        with pytest.raises(KeyError, match="unknown device"):
            get_device_spec("h100")

    def test_a100_beats_mi100_on_bandwidth(self):
        # The paper observes slightly better SpMV on the A100 (Fig. 5a).
        assert (
            NVIDIA_A100.effective_bandwidth()
            > AMD_MI100.effective_bandwidth()
        )

    def test_gpu_specs_have_all_precisions(self):
        for spec in (NVIDIA_A100, AMD_MI100):
            for dtype in ("float16", "float32", "float64"):
                assert spec.peak_flops_for(dtype) > 0

    def test_unknown_precision_raises(self):
        with pytest.raises(KeyError, match="no peak-FLOP entry"):
            NVIDIA_A100.peak_flops_for("complex128")

    def test_cpu_single_thread_bandwidth_below_socket(self):
        one = INTEL_XEON_8368.effective_bandwidth(1)
        full = INTEL_XEON_8368.effective_bandwidth(None)
        assert one < full
        assert one <= INTEL_XEON_8368.single_core_bandwidth

    def test_cpu_bandwidth_monotone_in_threads(self):
        values = [
            INTEL_XEON_8368.effective_bandwidth(t) for t in (1, 2, 4, 8, 16, 32)
        ]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_cpu_bandwidth_saturates(self):
        # Going from 32 to 38 threads gains much less than 1 to 2.
        gain_low = INTEL_XEON_8368.effective_bandwidth(2) / (
            INTEL_XEON_8368.effective_bandwidth(1)
        )
        gain_high = INTEL_XEON_8368.effective_bandwidth(38) / (
            INTEL_XEON_8368.effective_bandwidth(32)
        )
        assert gain_low > 1.5
        assert gain_high < 1.1

    def test_gpu_bandwidth_ignores_threads(self):
        assert NVIDIA_A100.effective_bandwidth(4) == (
            NVIDIA_A100.effective_bandwidth()
        )

    def test_reference_host_is_modest(self):
        assert GENERIC_HOST.effective_bandwidth() < (
            INTEL_XEON_8368.effective_bandwidth()
        )
