"""Thread-scaling model tests."""

import pytest

from repro.perfmodel.threads import parallel_efficiency, thread_scaling


class TestThreadScaling:
    def test_monotone_in_threads(self):
        values = [
            thread_scaling(t, 38, 13e9, 163e9) for t in (1, 2, 4, 8, 16, 32)
        ]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_bounded_by_one(self):
        for t in (1, 8, 38, 100):
            assert 0 < thread_scaling(t, 38, 13e9, 163e9) <= 1.0

    def test_clamps_to_core_count(self):
        assert thread_scaling(38, 38, 13e9, 163e9) == pytest.approx(
            thread_scaling(100, 38, 13e9, 163e9)
        )

    def test_linear_regime_for_few_threads(self):
        one = thread_scaling(1, 38, 13e9, 163e9)
        two = thread_scaling(2, 38, 13e9, 163e9)
        assert two / one == pytest.approx(2.0, rel=0.05)

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            thread_scaling(0, 38, 13e9, 163e9)

    def test_invalid_bandwidths(self):
        with pytest.raises(ValueError):
            thread_scaling(1, 38, 0.0, 163e9)


class TestParallelEfficiency:
    def test_no_serial_fraction_is_perfect(self):
        assert parallel_efficiency(8, 0.0) == pytest.approx(1.0)

    def test_fully_serial_efficiency(self):
        assert parallel_efficiency(8, 1.0) == pytest.approx(1.0 / 8)

    def test_amdahl_midpoint(self):
        # 10% serial at 10 threads: speedup = 1/(0.1 + 0.09) ~ 5.26.
        eff = parallel_efficiency(10, 0.1)
        assert eff == pytest.approx(0.526, rel=0.01)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            parallel_efficiency(4, 1.5)
