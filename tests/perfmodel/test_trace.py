"""Tests of the trace data structures and Chrome export."""

from __future__ import annotations

import json

import pytest

from repro.perfmodel import AttributionTable, Span, Trace
from repro.perfmodel.clock import KernelEvent


class TestSpan:
    def test_duration_and_self_time(self):
        parent = Span("solve", "solver", 0.0, end=10.0)
        parent.children.append(Span("spmv", "kernel", 1.0, end=4.0))
        parent.children.append(Span("dot", "kernel", 4.0, end=6.0))
        assert parent.duration == 10.0
        assert parent.self_time == 5.0

    def test_open_span_has_zero_duration(self):
        assert Span("open", "op", 3.0).duration == 0.0

    def test_walk_is_depth_first(self):
        root = Span("a", "op", 0.0, end=3.0)
        child = Span("b", "op", 0.0, end=2.0)
        child.children.append(Span("c", "kernel", 0.0, end=1.0))
        root.children.append(child)
        assert [s.name for s in root.walk()] == ["a", "b", "c"]

    def test_gflops_inf_guard(self):
        # Zero-duration work must surface as inf, not silently 0.
        free = Span("fused", "kernel", 0.0, end=0.0, meta={"flops": 100.0})
        assert free.gflops == float("inf")
        none = Span("memcpy", "kernel", 0.0, end=1.0, meta={"flops": 0.0})
        assert none.gflops == 0.0
        real = Span("spmv", "kernel", 0.0, end=1e-9, meta={"flops": 10.0})
        assert real.gflops == pytest.approx(10.0)


class TestKernelEventGflops:
    def test_zero_duration_with_flops_is_inf(self):
        event = KernelEvent("fused", 0.0, 0.0, flops=50.0, bytes=0.0, launches=1)
        assert event.gflops == float("inf")

    def test_zero_flops_is_zero(self):
        event = KernelEvent("copy", 0.0, 0.0, flops=0.0, bytes=8.0, launches=1)
        assert event.gflops == 0.0

    def test_normal_rate(self):
        event = KernelEvent("spmv", 0.0, 1e-3, flops=2e6, bytes=0.0, launches=1)
        assert event.gflops == pytest.approx(2.0e-3 / 1e-3)


class TestTrace:
    def build(self) -> Trace:
        trace = Trace("t")
        trace.open("solve", "solver", 0.0, track="gpu")
        trace.leaf("spmv", "kernel", 0.0, 2.0, track="gpu",
                   meta={"flops": 4.0, "bytes": 8.0, "launches": 1})
        trace.leaf("crossing", "binding", 2.0, 1.0, track="gpu")
        trace.instant("fault", 2.5, track="gpu", meta={"site": "spmv"})
        trace.leaf("sync", "stall", 3.0, 1.0, track="gpu")
        trace.close(4.0, track="gpu")
        return trace

    def test_nesting(self):
        trace = self.build()
        assert len(trace.roots) == 1
        root = trace.roots[0]
        assert [c.name for c in root.children] == [
            "spmv", "crossing", "fault", "sync",
        ]

    def test_close_on_empty_stack_returns_none(self):
        assert Trace().close(1.0) is None

    def test_close_all(self):
        trace = Trace()
        trace.open("a", "op", 0.0)
        trace.open("b", "op", 1.0)
        trace.close_all(5.0)
        assert all(s.end == 5.0 for s in trace.walk())

    def test_find_and_num_spans(self):
        trace = self.build()
        assert trace.num_spans == 5
        assert len(trace.find("spmv")) == 1

    def test_attribution_buckets(self):
        table = self.build().attribution()
        assert table.total == 4.0
        assert table.kernel_time == 2.0
        assert table.binding_time == 1.0
        assert table.stall_time == 1.0
        assert table.coverage == pytest.approx(1.0)

    def test_chrome_trace_round_trips(self):
        data = json.loads(self.build().to_chrome_trace())
        events = data["traceEvents"]
        assert len(events) == 5
        phases = {e["name"]: e["ph"] for e in events}
        assert phases["solve"] == "X"
        assert phases["fault"] == "i"

    def test_chrome_trace_ts_monotonic(self):
        events = json.loads(self.build().to_chrome_trace())["traceEvents"]
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)

    def test_chrome_trace_parents_precede_children(self):
        events = self.build().chrome_trace_events()
        names = [e["name"] for e in events]
        assert names.index("solve") < names.index("spmv")

    def test_tracks_map_to_tids(self):
        trace = Trace()
        trace.leaf("a", "kernel", 0.0, 1.0, track="gpu")
        trace.leaf("b", "kernel", 0.0, 1.0, track="host")
        tids = {e["name"]: e["tid"] for e in trace.chrome_trace_events()}
        assert tids == {"a": 0, "b": 1}

    def test_serialisation_is_deterministic(self):
        assert self.build().to_chrome_trace() == self.build().to_chrome_trace()


class TestAttributionTable:
    def test_empty_table_coverage_is_one(self):
        table = AttributionTable()
        assert table.coverage == 1.0
        assert table.binding_fraction == 0.0

    def test_transfer_and_host_fold_into_stall(self):
        trace = Trace()
        trace.open("region", "region", 0.0)
        trace.leaf("pcie", "transfer", 0.0, 1.0)
        trace.leaf("misc", "host", 1.0, 2.0)
        trace.close(3.0)
        table = trace.attribution()
        assert table.stall_time == 3.0
        assert table.categories == {"transfer": 1.0, "host": 2.0}

    def test_kernel_rows_aggregate(self):
        trace = Trace()
        trace.open("region", "region", 0.0)
        for i in range(3):
            trace.leaf("spmv", "kernel", float(i), 1.0,
                       meta={"flops": 10.0, "bytes": 4.0, "launches": 2})
        trace.close(3.0)
        row = trace.attribution().kernels["spmv"]
        assert row.calls == 3
        assert row.time == 3.0
        assert row.flops == 30.0
        assert row.launches == 6

    def test_kernel_row_gflops_inf_guard(self):
        trace = Trace()
        trace.open("region", "region", 0.0)
        trace.leaf("free", "kernel", 0.0, 0.0, meta={"flops": 5.0})
        trace.close(0.0)
        table = trace.attribution()
        assert table.kernels["free"].gflops == float("inf")
        # And the summary must render without raising on the inf.
        assert "inf" in table.summary()

    def test_binding_tags_aggregate(self):
        trace = Trace()
        trace.open("region", "region", 0.0)
        trace.leaf("gmres_factory_double", "binding", 0.0, 1.0)
        trace.leaf("gmres_factory_double", "binding", 1.0, 1.0)
        trace.leaf("dense_double", "binding", 2.0, 0.5)
        trace.close(2.5)
        table = trace.attribution()
        assert table.bindings == {
            "gmres_factory_double": 2.0, "dense_double": 0.5,
        }
        assert table.binding_fraction == pytest.approx(1.0)
