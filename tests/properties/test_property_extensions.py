"""Property-based tests for the extension modules (hypothesis)."""

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st
from scipy.ndimage import correlate

from repro.ginkgo.executor import ReferenceExecutor
from repro.ginkgo.matrix.csr import Csr
from repro.ginkgo.matrix.stencil import StencilOp, convolution_matrix
from repro.ginkgo.multigrid import (
    pairwise_aggregation,
    prolongation_from_aggregates,
)
from repro.ginkgo.reorder import bandwidth, permute, rcm
from repro.ginkgo.scaling import equilibrate

REF = ReferenceExecutor.create(noisy=False)


@st.composite
def odd_kernels(draw):
    kh = draw(st.sampled_from([1, 3, 5]))
    kw = draw(st.sampled_from([1, 3, 5]))
    seed = draw(st.integers(0, 2**31 - 1))
    return np.random.default_rng(seed).standard_normal((kh, kw))


@st.composite
def square_matrices(draw, max_dim: int = 25):
    n = draw(st.integers(min_value=2, max_value=max_dim))
    density = draw(st.floats(min_value=0.05, max_value=0.5))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    mat = sp.random(
        n, n, density=density, format="csr",
        random_state=np.random.default_rng(seed),
    )
    row_sums = np.asarray(np.abs(mat).sum(axis=1)).ravel()
    return (mat + sp.diags(row_sums + 1.0)).tocsr()


class TestStencilProperties:
    @given(
        kernel=odd_kernels(),
        height=st.integers(3, 12),
        width=st.integers(3, 12),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_scipy_for_random_kernels(self, kernel, height, width,
                                              seed):
        image = np.random.default_rng(seed).standard_normal((height, width))
        op = StencilOp(REF, (height, width), kernel)
        expect = correlate(image, kernel, mode="constant")
        np.testing.assert_allclose(op.apply_image(image), expect, atol=1e-10)

    @given(kernel=odd_kernels(), seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_linearity(self, kernel, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((8, 8))
        b = rng.standard_normal((8, 8))
        op = StencilOp(REF, (8, 8), kernel)
        combined = op.apply_image(2.0 * a + 3.0 * b)
        separate = 2.0 * op.apply_image(a) + 3.0 * op.apply_image(b)
        np.testing.assert_allclose(combined, separate, atol=1e-9)

    @given(
        height=st.integers(2, 10),
        width=st.integers(2, 10),
    )
    @settings(max_examples=20, deadline=None)
    def test_identity_kernel_is_identity_matrix(self, height, width):
        mat = convolution_matrix((height, width), np.array([[1.0]]))
        np.testing.assert_array_equal(
            mat.toarray(), np.eye(height * width)
        )


class TestReorderProperties:
    @given(mat=square_matrices())
    @settings(max_examples=25, deadline=None)
    def test_rcm_never_increases_bandwidth_much(self, mat):
        # RCM produces a valid permutation whose symmetric application
        # preserves the spectrum (same matrix up to relabeling).
        engine = Csr.from_scipy(REF, mat)
        perm = rcm(engine)
        reordered = permute(engine, perm)
        assert reordered.nnz == engine.nnz
        # Eigenvalue multiset preserved (permutation similarity).
        original = np.sort(np.linalg.eigvals(mat.toarray()).real)
        after = np.sort(
            np.linalg.eigvals(reordered.to_scipy().toarray()).real
        )
        np.testing.assert_allclose(after, original, atol=1e-8)

    @given(mat=square_matrices())
    @settings(max_examples=25, deadline=None)
    def test_permutation_is_bijection(self, mat):
        engine = Csr.from_scipy(REF, mat)
        order = rcm(engine).permutation
        assert np.array_equal(np.sort(order), np.arange(mat.shape[0]))


class TestEquilibrationProperties:
    @given(
        mat=square_matrices(),
        exponent=st.floats(min_value=0.0, max_value=6.0),
        sweeps=st.integers(1, 4),
    )
    @settings(max_examples=25, deadline=None)
    def test_scaled_entries_bounded(self, mat, exponent, sweeps):
        n = mat.shape[0]
        skew = sp.diags(np.logspace(-exponent, exponent, n))
        engine = Csr.from_scipy(REF, (skew @ mat).tocsr())
        eq = equilibrate(engine, iterations=sweeps)
        scaled = abs(eq.scaled_matrix.to_scipy())
        if scaled.nnz:
            assert scaled.max() < 50.0

    @given(mat=square_matrices(), seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_scaling_identity(self, mat, seed):
        # D_r A D_c must equal the reported scaled matrix exactly.
        engine = Csr.from_scipy(REF, mat)
        eq = equilibrate(engine)
        dr = np.asarray(eq.row_scale.values)
        dc = np.asarray(eq.col_scale.values)
        rebuilt = sp.diags(dr) @ mat @ sp.diags(dc)
        np.testing.assert_allclose(
            eq.scaled_matrix.to_scipy().toarray(),
            rebuilt.toarray(),
            atol=1e-12,
        )


class TestAggregationProperties:
    @given(mat=square_matrices())
    @settings(max_examples=25, deadline=None)
    def test_aggregation_is_total_and_compact(self, mat):
        agg = pairwise_aggregation(mat)
        assert agg.size == mat.shape[0]
        assert agg.min() >= 0
        # Ids are contiguous 0..max.
        assert set(np.unique(agg)) == set(range(agg.max() + 1))

    @given(mat=square_matrices())
    @settings(max_examples=25, deadline=None)
    def test_galerkin_product_preserves_row_sums(self, mat):
        # For the piecewise-constant P: (P^T A P) 1 = P^T (A 1), so total
        # row-sum mass is conserved across the coarse transfer.
        agg = pairwise_aggregation(mat)
        p = prolongation_from_aggregates(agg)
        coarse = (p.T @ mat @ p).tocsr()
        fine_mass = mat.sum()
        np.testing.assert_allclose(coarse.sum(), fine_mass, rtol=1e-10)
