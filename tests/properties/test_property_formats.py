"""Property-based tests on the matrix formats (hypothesis)."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.ginkgo.executor import ReferenceExecutor
from repro.ginkgo.matrix import Coo, Csr, Dense, Ell, Hybrid, Sellp

REF = ReferenceExecutor.create(noisy=False)


@st.composite
def sparse_matrices(draw, max_dim: int = 30):
    """Random sparse matrices of varying shape, density, and seed."""
    rows = draw(st.integers(min_value=1, max_value=max_dim))
    cols = draw(st.integers(min_value=1, max_value=max_dim))
    density = draw(st.floats(min_value=0.01, max_value=0.6))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    mat = sp.random(
        rows, cols, density=density, format="csr",
        random_state=np.random.default_rng(seed), dtype=np.float64,
    )
    # Shift values away from zero so eliminate_zeros is a no-op and
    # nnz comparisons stay exact.
    mat.data += np.sign(mat.data) + (mat.data == 0)
    return mat


@st.composite
def square_spd(draw, max_dim: int = 25):
    n = draw(st.integers(min_value=2, max_value=max_dim))
    density = draw(st.floats(min_value=0.05, max_value=0.5))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    half = sp.random(
        n, n, density=density, format="csr",
        random_state=np.random.default_rng(seed), dtype=np.float64,
    )
    symmetric = half + half.T
    row_sums = np.asarray(np.abs(symmetric).sum(axis=1)).ravel()
    return (symmetric + sp.diags(row_sums + 1.0)).tocsr()


class TestConversionRoundtrips:
    @given(mat=sparse_matrices())
    @settings(max_examples=40, deadline=None)
    def test_csr_coo_roundtrip(self, mat):
        csr = Csr.from_scipy(REF, mat)
        back = csr.convert_to_coo().convert_to_csr()
        assert (abs(back.to_scipy() - mat)).max() < 1e-14
        assert back.nnz == mat.nnz

    @given(mat=sparse_matrices())
    @settings(max_examples=30, deadline=None)
    def test_csr_ell_roundtrip(self, mat):
        back = Csr.from_scipy(REF, mat).convert_to_ell().convert_to_csr()
        assert (abs(back.to_scipy() - mat)).max() < 1e-14

    @given(mat=sparse_matrices(), slice_size=st.sampled_from([1, 4, 32]))
    @settings(max_examples=30, deadline=None)
    def test_csr_sellp_roundtrip(self, mat, slice_size):
        back = (
            Csr.from_scipy(REF, mat)
            .convert_to_sellp(slice_size=slice_size)
            .convert_to_csr()
        )
        assert (abs(back.to_scipy() - mat)).max() < 1e-14

    @given(mat=sparse_matrices(), percent=st.floats(0.0, 1.0))
    @settings(max_examples=30, deadline=None)
    def test_csr_hybrid_roundtrip(self, mat, percent):
        back = (
            Csr.from_scipy(REF, mat)
            .convert_to_hybrid(percent=percent)
            .convert_to_csr()
        )
        assert (abs(back.to_scipy() - mat)).max() < 1e-14


class TestSpmvEquivalence:
    @given(mat=sparse_matrices(), seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_all_formats_agree_with_scipy(self, mat, seed):
        x = np.random.default_rng(seed).standard_normal((mat.shape[1], 1))
        expect = mat @ x
        for cls in (Csr, Coo, Ell, Sellp, Hybrid):
            engine = cls.from_scipy(REF, mat)
            out = Dense.zeros(REF, (mat.shape[0], 1), np.float64)
            engine.apply(Dense(REF, x), out)
            np.testing.assert_allclose(
                np.asarray(out), expect, atol=1e-10,
                err_msg=cls.__name__,
            )

    @given(mat=sparse_matrices())
    @settings(max_examples=30, deadline=None)
    def test_csr_strategies_numerically_identical(self, mat):
        x = np.ones((mat.shape[1], 1))
        results = []
        for strategy in ("classical", "load_balance", "merge_path"):
            engine = Csr.from_scipy(REF, mat, strategy=strategy)
            out = Dense.zeros(REF, (mat.shape[0], 1), np.float64)
            engine.apply(Dense(REF, x), out)
            results.append(np.asarray(out).copy())
        np.testing.assert_array_equal(results[0], results[1])
        np.testing.assert_array_equal(results[0], results[2])


class TestTransposeProperties:
    @given(mat=sparse_matrices())
    @settings(max_examples=40, deadline=None)
    def test_double_transpose_identity(self, mat):
        csr = Csr.from_scipy(REF, mat)
        back = csr.transpose().transpose()
        assert (abs(back.to_scipy() - mat)).max() < 1e-14

    @given(mat=sparse_matrices(), seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_transpose_spmv_identity(self, mat, seed):
        # <A^T y, x> == <y, A x>
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((mat.shape[1], 1))
        y = rng.standard_normal((mat.shape[0], 1))
        csr = Csr.from_scipy(REF, mat)
        ax = Dense.zeros(REF, (mat.shape[0], 1), np.float64)
        csr.apply(Dense(REF, x), ax)
        aty = Dense.zeros(REF, (mat.shape[1], 1), np.float64)
        csr.transpose().apply(Dense(REF, y), aty)
        lhs = (np.asarray(aty).T @ x).item()
        rhs = (y.T @ np.asarray(ax)).item()
        assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-9)


class TestSpdInvariants:
    @given(mat=square_spd(), seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_quadratic_form_positive(self, mat, seed):
        x = np.random.default_rng(seed).standard_normal((mat.shape[0], 1))
        csr = Csr.from_scipy(REF, mat)
        ax = Dense.zeros(REF, x.shape, np.float64)
        csr.apply(Dense(REF, x), ax)
        assert (x.T @ np.asarray(ax)).item() > 0
