"""Property-based tests on the performance model's invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.perfmodel import (
    AMD_MI100,
    INTEL_XEON_8368,
    NVIDIA_A100,
    SimClock,
    spmv_cost,
)
from repro.perfmodel.threads import thread_scaling

DEVICES = [NVIDIA_A100, AMD_MI100, INTEL_XEON_8368]
LIBRARIES = ["ginkgo", "cupy", "pytorch", "tensorflow", "scipy"]


class TestModelInvariants:
    @given(
        nnz=st.integers(1, 10**8),
        rows=st.integers(1, 10**6),
        lib=st.sampled_from(LIBRARIES),
        device_index=st.integers(0, 2),
    )
    @settings(max_examples=60, deadline=None)
    def test_times_always_positive(self, nnz, rows, lib, device_index):
        clock = SimClock(DEVICES[device_index], library=lib, noisy=False)
        cost = spmv_cost("csr", rows, rows, nnz, 4, 4)
        assert clock.kernel_time(cost) > 0

    @given(
        nnz=st.integers(100, 10**7),
        lib=st.sampled_from(LIBRARIES),
    )
    @settings(max_examples=40, deadline=None)
    def test_time_monotone_in_nnz(self, nnz, lib):
        clock = SimClock(NVIDIA_A100, library=lib, noisy=False)
        rows = max(nnz // 10, 1)
        small = clock.kernel_time(spmv_cost("csr", rows, rows, nnz, 4, 4))
        large = clock.kernel_time(
            spmv_cost("csr", rows, rows, 2 * nnz, 4, 4)
        )
        assert large > small

    @given(nnz=st.integers(100, 10**7))
    @settings(max_examples=30, deadline=None)
    def test_fp64_never_faster_than_fp32(self, nnz):
        clock = SimClock(NVIDIA_A100, library="ginkgo", noisy=False)
        rows = max(nnz // 10, 1)
        t32 = clock.kernel_time(spmv_cost("csr", rows, rows, nnz, 4, 4))
        t64 = clock.kernel_time(spmv_cost("csr", rows, rows, nnz, 8, 4))
        assert t64 >= t32

    @given(
        threads_a=st.integers(1, 37),
        extra=st.integers(1, 10),
    )
    @settings(max_examples=40, deadline=None)
    def test_thread_scaling_monotone(self, threads_a, extra):
        spec = INTEL_XEON_8368
        socket = spec.memory_bandwidth * spec.effective_bandwidth_fraction
        low = thread_scaling(
            threads_a, spec.cores, spec.single_core_bandwidth, socket
        )
        high = thread_scaling(
            threads_a + extra, spec.cores, spec.single_core_bandwidth, socket
        )
        assert high >= low

    @given(nnz=st.integers(10**3, 10**8))
    @settings(max_examples=30, deadline=None)
    def test_gpu_speedup_grows_with_nnz(self, nnz):
        # The central shape of Figs. 3a/4: GPU-over-1-core speedup is
        # non-decreasing in problem size.
        gpu = SimClock(NVIDIA_A100, library="ginkgo", noisy=False)
        cpu = SimClock(
            INTEL_XEON_8368, library="scipy", num_threads=1, noisy=False
        )
        rows = max(nnz // 10, 1)
        cost_small = spmv_cost("csr", rows, rows, nnz, 4, 4)
        cost_large = spmv_cost("csr", rows * 4, rows * 4, nnz * 4, 4, 4)
        speedup_small = cpu.kernel_time(cost_small) / gpu.kernel_time(
            cost_small
        )
        speedup_large = cpu.kernel_time(cost_large) / gpu.kernel_time(
            cost_large
        )
        assert speedup_large >= speedup_small * 0.99

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_noisy_clock_mean_matches_noiseless(self, seed):
        cost = spmv_cost("csr", 10**5, 10**5, 10**6, 4, 4)
        noiseless = SimClock(NVIDIA_A100, noisy=False).kernel_time(cost)
        noisy = SimClock(NVIDIA_A100, seed=seed)
        samples = [noisy.record(cost) for _ in range(200)]
        assert np.mean(samples) / noiseless < 1.2
        assert np.mean(samples) / noiseless > 0.8
