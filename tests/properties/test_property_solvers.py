"""Property-based solver tests: convergence invariants on random SPD
systems, residual consistency, MTX and config round-trips."""

import io
import json

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.ginkgo.config import parse, validate
from repro.ginkgo.config.parser import to_json
from repro.ginkgo.executor import ReferenceExecutor
from repro.ginkgo.log import ConvergenceLogger
from repro.ginkgo.matrix import Csr, Dense
from repro.ginkgo.mtx_io import read_mtx_string, write_mtx
from repro.ginkgo.solver import Bicgstab, Cg, Cgs, Gmres
from repro.ginkgo.stop import Iteration, ResidualNorm

REF = ReferenceExecutor.create(noisy=False)


@st.composite
def spd_systems(draw, max_dim: int = 30):
    n = draw(st.integers(min_value=2, max_value=max_dim))
    density = draw(st.floats(min_value=0.05, max_value=0.5))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    half = sp.random(n, n, density=density, format="csr", random_state=rng)
    symmetric = half + half.T
    row_sums = np.asarray(np.abs(symmetric).sum(axis=1)).ravel()
    matrix = (symmetric + sp.diags(row_sums + 1.0)).tocsr()
    xstar = rng.standard_normal((n, 1))
    return matrix, xstar


class TestSolverProperties:
    @given(system=spd_systems(),
           solver_cls=st.sampled_from([Cg, Cgs, Bicgstab, Gmres]))
    @settings(max_examples=30, deadline=None)
    def test_krylov_solvers_recover_solution(self, system, solver_cls):
        matrix, xstar = system
        mtx = Csr.from_scipy(REF, matrix)
        solver = solver_cls(
            REF, criteria=Iteration(600) | ResidualNorm(1e-12)
        ).generate(mtx)
        x = Dense.zeros(REF, xstar.shape, np.float64)
        solver.apply(Dense(REF, matrix @ xstar), x)
        assert solver.converged
        np.testing.assert_allclose(np.asarray(x), xstar, atol=1e-6)

    @given(system=spd_systems())
    @settings(max_examples=20, deadline=None)
    def test_cg_residual_history_reaches_threshold(self, system):
        matrix, xstar = system
        mtx = Csr.from_scipy(REF, matrix)
        solver = Cg(
            REF, criteria=Iteration(600) | ResidualNorm(1e-10)
        ).generate(mtx)
        logger = ConvergenceLogger()
        solver.add_logger(logger)
        x = Dense.zeros(REF, xstar.shape, np.float64)
        b = matrix @ xstar
        solver.apply(Dense(REF, b), x)
        # Reported final residual matches the true residual.
        true_res = np.linalg.norm(b - matrix @ np.asarray(x))
        assert logger.final_residual_norm == pytest.approx(
            true_res, rel=1e-6, abs=1e-12
        )

    @given(system=spd_systems(), max_iters=st.integers(1, 10))
    @settings(max_examples=20, deadline=None)
    def test_iteration_budget_never_exceeded(self, system, max_iters):
        matrix, xstar = system
        mtx = Csr.from_scipy(REF, matrix)
        solver = Cg(REF, criteria=Iteration(max_iters)).generate(mtx)
        x = Dense.zeros(REF, xstar.shape, np.float64)
        solver.apply(Dense(REF, matrix @ xstar), x)
        assert solver.num_iterations <= max_iters

    @given(system=spd_systems())
    @settings(max_examples=15, deadline=None)
    def test_cg_iterations_bounded_by_dimension(self, system):
        # Exact-arithmetic CG terminates in <= n steps; numerically we
        # allow a modest factor.
        matrix, xstar = system
        mtx = Csr.from_scipy(REF, matrix)
        solver = Cg(
            REF, criteria=Iteration(10 * matrix.shape[0]) | ResidualNorm(1e-9)
        ).generate(mtx)
        x = Dense.zeros(REF, xstar.shape, np.float64)
        solver.apply(Dense(REF, matrix @ xstar), x)
        assert solver.converged
        assert solver.num_iterations <= 2 * matrix.shape[0] + 5


class TestMtxRoundtripProperty:
    @given(
        rows=st.integers(1, 20),
        cols=st.integers(1, 20),
        density=st.floats(0.05, 0.8),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_write_read_identity(self, rows, cols, density, seed):
        mat = sp.random(
            rows, cols, density=density, format="coo",
            random_state=np.random.default_rng(seed),
        )
        buf = io.StringIO()
        write_mtx(buf, mat)
        back = read_mtx_string(buf.getvalue())
        assert back.shape == mat.shape
        assert (abs(mat - back)).max() < 1e-15 or mat.nnz == 0


class TestConfigRoundtripProperty:
    @given(
        solver=st.sampled_from(
            ["solver::Cg", "solver::Cgs", "solver::Bicgstab", "solver::Gmres"]
        ),
        max_iters=st.integers(1, 10000),
        reduction=st.floats(1e-16, 1e-1),
        precond=st.sampled_from(
            [None, "preconditioner::Jacobi", "preconditioner::Ilu"]
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_valid_configs_parse_and_serialise(
        self, solver, max_iters, reduction, precond
    ):
        config = {
            "type": solver,
            "criteria": [
                {"type": "stop::Iteration", "max_iters": max_iters},
                {"type": "stop::ResidualNorm",
                 "reduction_factor": reduction},
            ],
        }
        if solver == "solver::Gmres":
            config["krylov_dim"] = 30
        if precond:
            config["preconditioner"] = {"type": precond}
        validate(config)
        factory = parse(REF, config)
        assert factory is not None
        # JSON round-trip preserves the dictionary.
        assert json.loads(to_json(config)) == config
