"""Unit tests: job queue ordering, admission control, lane coalescing."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.ginkgo.exceptions import GinkgoError
from repro.ginkgo.matrix import Csr
from repro.service import (
    AdmissionControl,
    Coalescer,
    JobQueue,
    SolveJob,
    lane_key,
)


def _spd(n=8, shift=0.0):
    return sp.diags(
        [-np.ones(n - 1), (4.0 + shift) * np.ones(n), -np.ones(n - 1)],
        [-1, 0, 1],
        format="csr",
    )


def _job(
    ref,
    job_id,
    arrival=0.0,
    priority=0,
    deadline=None,
    n=8,
    shift=0.0,
    solver="cg",
):
    job = SolveJob(
        matrix=Csr.from_scipy(ref, _spd(n, shift)),
        rhs=np.ones((n, 1)),
        arrival=arrival,
        priority=priority,
        deadline=deadline,
        solver=solver,
    )
    job.job_id = job_id
    return job


class TestJobQueue:
    def test_unknown_policy_rejected(self):
        with pytest.raises(GinkgoError, match="policy"):
            JobQueue("lifo")

    def test_edf_priority_classes_first(self, ref):
        q = JobQueue("edf")
        q.push(_job(ref, 0, priority=0, deadline=1.0))
        q.push(_job(ref, 1, priority=2))
        q.push(_job(ref, 2, priority=1, deadline=0.5))
        assert [q.pop().job_id for _ in range(3)] == [1, 2, 0]

    def test_edf_within_class_earliest_deadline(self, ref):
        q = JobQueue("edf")
        q.push(_job(ref, 0, deadline=3.0))
        q.push(_job(ref, 1, deadline=1.0))
        q.push(_job(ref, 2))  # no deadline sorts after all deadlines
        q.push(_job(ref, 3, deadline=2.0))
        assert [q.pop().job_id for _ in range(4)] == [1, 3, 0, 2]

    def test_edf_arrival_breaks_ties(self, ref):
        q = JobQueue("edf")
        q.push(_job(ref, 0, arrival=0.2, deadline=1.0))
        q.push(_job(ref, 1, arrival=0.1, deadline=1.0))
        assert [q.pop().job_id for _ in range(2)] == [1, 0]

    def test_fifo_ignores_priority_and_deadline(self, ref):
        q = JobQueue("fifo")
        q.push(_job(ref, 0, arrival=0.0, priority=0))
        q.push(_job(ref, 1, arrival=0.1, priority=9, deadline=0.2))
        assert [q.pop().job_id for _ in range(2)] == [0, 1]

    def test_remove_skips_lazily(self, ref):
        q = JobQueue("edf")
        for i in range(3):
            q.push(_job(ref, i, arrival=0.1 * i))
        removed = q.remove(1)
        assert removed.job_id == 1
        assert len(q) == 2
        assert [q.pop().job_id for _ in range(2)] == [0, 2]
        assert q.pop() is None

    def test_jobs_returns_policy_order(self, ref):
        q = JobQueue("edf")
        q.push(_job(ref, 0, deadline=2.0))
        q.push(_job(ref, 1, priority=1))
        q.push(_job(ref, 2, deadline=1.0))
        assert [j.job_id for j in q.jobs()] == [1, 2, 0]
        assert len(q) == 3  # jobs() is a scan, not a drain


class TestAdmissionControl:
    def test_default_admits_everything(self, ref):
        ctl = AdmissionControl()
        assert ctl.admit(_job(ref, 0), queue_depth=10**6,
                         tenant_outstanding=10**6) is None

    def test_queue_depth_bound(self, ref):
        ctl = AdmissionControl(max_queue_depth=2)
        assert ctl.admit(_job(ref, 0), 1, 0) is None
        reason = ctl.admit(_job(ref, 1), 2, 0)
        assert reason is not None and "queue full" in reason

    def test_tenant_quota(self, ref):
        ctl = AdmissionControl(default_quota=2, quotas={"vip": 5})
        job = _job(ref, 0)
        assert ctl.admit(job, 0, 1) is None
        reason = ctl.admit(job, 0, 2)
        assert reason is not None and "over quota" in reason
        assert ctl.quota_for("vip") == 5
        assert ctl.quota_for("anyone-else") == 2

    def test_bad_depth_rejected(self):
        with pytest.raises(GinkgoError, match="max_queue_depth"):
            AdmissionControl(max_queue_depth=0)


class TestCoalescer:
    def test_lane_key_is_structural(self, ref):
        a = _job(ref, 0, shift=0.0)
        b = _job(ref, 1, shift=1.5)  # same pattern, different values
        assert lane_key(a) == lane_key(b)
        c = _job(ref, 2, n=10)
        assert lane_key(a) != lane_key(c)

    def test_lane_key_splits_on_controls_and_priority(self, ref):
        a = _job(ref, 0)
        b = _job(ref, 1)
        b.max_iters = a.max_iters + 1
        assert lane_key(a) != lane_key(b)
        c = _job(ref, 2, priority=1)
        assert lane_key(a) != lane_key(c)

    def test_gather_pulls_same_key_jobs(self, ref):
        q = JobQueue("edf")
        members = [_job(ref, i) for i in range(1, 4)]
        stranger = _job(ref, 9, n=12)
        for job in members + [stranger]:
            q.push(job)
        anchor = _job(ref, 0)
        lane = Coalescer(max_lane=8).gather(anchor, q, now=0.0)
        assert [j.job_id for j in lane] == [0, 1, 2, 3]
        assert len(q) == 1  # only the different-pattern job remains
        assert q.pop().job_id == 9

    def test_gather_respects_max_lane(self, ref):
        q = JobQueue("edf")
        for i in range(1, 6):
            q.push(_job(ref, i))
        lane = Coalescer(max_lane=3).gather(_job(ref, 0), q, now=0.0)
        assert len(lane) == 3
        assert len(q) == 3

    def test_gather_skips_expired_candidates(self, ref):
        q = JobQueue("edf")
        fresh = _job(ref, 1, deadline=10.0)
        expired = _job(ref, 2, deadline=0.5)
        q.push(fresh)
        q.push(expired)
        lane = Coalescer(max_lane=8).gather(_job(ref, 0), q, now=1.0)
        assert [j.job_id for j in lane] == [0, 1]
        assert q.pop().job_id == 2  # left queued for truthful expiry

    def test_disabled_or_foreign_solver(self, ref):
        q = JobQueue("edf")
        q.push(_job(ref, 1))
        assert len(Coalescer(max_lane=1).gather(_job(ref, 0), q, 0.0)) == 1
        richardson = _job(ref, 2, solver="richardson")
        assert len(Coalescer(max_lane=8).gather(richardson, q, 0.0)) == 1
        assert len(q) == 1
