"""Integration tests for the SolverService discrete-event scheduler."""

import numpy as np
import pytest
import scipy.sparse as sp

import repro as pg
from repro.core.resilient import (
    CircuitBreaker,
    FallbackChain,
    resilient_solve,
)
from repro.ginkgo.matrix import Csr
from repro.ginkgo.matrix.dense import Dense
from repro.service import (
    AdmissionControl,
    SolveJob,
    SolverService,
    synthetic_workload,
)


def _spd(n=24, shift=0.0):
    return sp.diags(
        [-np.ones(n - 1), (4.0 + shift) * np.ones(n), -np.ones(n - 1)],
        [-1, 0, 1],
        format="csr",
    )


def _job(ref, arrival=0.0, priority=0, deadline=None, n=24, shift=0.0):
    return SolveJob(
        matrix=Csr.from_scipy(ref, _spd(n, shift)),
        rhs=np.linspace(1.0, 2.0, n).reshape(-1, 1),
        arrival=arrival,
        priority=priority,
        deadline=deadline,
        solver="cg",
        max_iters=200,
        reduction_factor=1e-9,
    )


def _solo(job):
    """The byte-identity oracle: the job solved alone on a fresh device."""
    dev = pg.device("reference", fresh=True)
    mtx = job.matrix.copy_to(dev)
    b = Dense.create(dev, job.rhs)
    _, x = resilient_solve(
        dev,
        mtx,
        b,
        solver=job.solver,
        max_iters=job.max_iters,
        reduction_factor=job.reduction_factor,
        fallback=FallbackChain(dev),
    )
    return np.array(pg.to_numpy(x), copy=True)


@pytest.fixture
def burst(ref):
    """A bursty stream: 12 small jobs over 2 patterns, near-simultaneous."""
    return synthetic_workload(
        ref,
        num_jobs=12,
        num_patterns=2,
        small_n=24,
        mean_interarrival=1e-7,
        seed=42,
    )


class TestCompletionAndIdentity:
    def test_every_job_answered_in_submission_order(self, burst):
        service = SolverService(num_workers=2, coalesce=True, max_lane=8)
        results = service.run(burst)
        assert len(results) == len(burst)
        assert [r.job.job_id for r in results] == sorted(
            r.job.job_id for r in results
        )
        assert all(r.status == "completed" for r in results)
        assert all(r.converged for r in results)

    def test_coalesced_solutions_byte_identical_to_solo(self, burst):
        service = SolverService(num_workers=2, coalesce=True, max_lane=8)
        results = service.run(burst)
        assert any(r.lane_size > 1 for r in results)  # lanes actually formed
        for result in results:
            np.testing.assert_array_equal(result.x, _solo(result.job))

    def test_lanes_share_pattern_fingerprint(self, burst):
        service = SolverService(num_workers=2, coalesce=True, max_lane=8)
        results = service.run(burst)
        lanes = {}
        for r in results:
            if r.route == "batch":
                lanes.setdefault((r.worker, r.started), []).append(r)
        assert lanes
        for members in lanes.values():
            prints = {m.job.matrix.pattern_fingerprint() for m in members}
            assert len(prints) == 1

    def test_distributed_route_byte_identical(self, ref):
        n = 64
        job = _job(ref, n=n)
        service = SolverService(
            num_workers=1,
            coalesce=False,
            distributed_threshold=n,
            distributed_ranks=4,
        )
        result = service.run([job])[0]
        assert result.route == "distributed"
        assert result.status == "completed"
        np.testing.assert_array_equal(result.x, _solo(job))


class TestScheduling:
    def test_priority_runs_first(self, ref):
        jobs = [
            _job(ref, priority=0),
            _job(ref, priority=2),
            _job(ref, priority=1),
        ]
        service = SolverService(num_workers=1, coalesce=False)
        results = service.run(jobs)
        started = {r.job.priority: r.started for r in results}
        assert started[2] < started[1] < started[0]

    def test_fifo_ignores_priority(self, ref):
        jobs = [
            _job(ref, arrival=0.0, priority=0),
            _job(ref, arrival=1e-9, priority=5),
        ]
        service = SolverService(num_workers=1, coalesce=False, policy="fifo")
        results = service.run(jobs)
        assert results[0].started < results[1].started

    def test_latency_includes_queue_wait(self, burst):
        service = SolverService(num_workers=1, coalesce=False)
        results = service.run(burst)
        waited = [r for r in results if r.queue_wait > 0]
        assert waited
        for r in results:
            assert r.latency == pytest.approx(r.queue_wait + r.solve_time)


class TestAdmission:
    def test_queue_depth_rejection(self, ref):
        jobs = [_job(ref) for _ in range(3)]
        service = SolverService(
            num_workers=1,
            coalesce=False,
            admission=AdmissionControl(max_queue_depth=1),
        )
        results = service.run(jobs)
        statuses = [r.status for r in results]
        assert statuses == ["completed", "rejected", "rejected"]
        assert all("queue full" in r.reason for r in results[1:])

    def test_tenant_quota_rejection(self, ref):
        a = _job(ref)
        b = _job(ref)
        a.tenant = b.tenant = "heavy"
        service = SolverService(
            num_workers=1,
            coalesce=False,
            admission=AdmissionControl(default_quota=1),
        )
        results = service.run([a, b])
        assert results[0].status == "completed"
        assert results[1].status == "rejected"
        assert "over quota" in results[1].reason


class TestDeadlines:
    def test_deadline_expired_in_queue_is_truthful_and_free(self, ref):
        blocker = _job(ref, arrival=0.0, priority=1)
        doomed = _job(ref, arrival=1e-10, deadline=2e-10)
        service = SolverService(num_workers=1, coalesce=False)
        results = service.run([blocker, doomed])
        assert results[0].status == "completed"
        r = results[1]
        assert r.status == "timed_out"
        assert r.deadline_missed
        assert r.report.timed_out and r.report.partial
        assert r.report.attempts == 0  # no solve was charged
        np.testing.assert_array_equal(r.x, np.zeros_like(doomed.rhs))
        # Exactly one resilient solve ran (the blocker's).
        assert service.metrics.counter("solves").value == 1
        assert service.metrics.counter("service_jobs_timed_out").value == 1

    def test_deadline_mid_solve_returns_partial(self, ref):
        job = _job(ref, arrival=0.0, deadline=1e-9, n=400)
        service = SolverService(num_workers=1, coalesce=False)
        result = service.run([job])[0]
        assert result.status == "timed_out"
        assert result.deadline_missed
        assert result.report.timed_out and result.report.partial
        assert not result.report.converged

    def test_open_circuit_reroutes_instead_of_losing_jobs(self, ref):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=1e9)
        # Open the circuit for the reference device family the workers
        # run on (the breaker keys circuits by executor name).
        breaker.record_failure(pg.device("reference", fresh=True))
        service = SolverService(
            num_workers=1,
            coalesce=False,
            fallback=FallbackChain("omp", breaker=breaker),
        )
        result = service.run([_job(ref)])[0]
        assert result.status == "completed"
        assert result.report.executor_name == "omp"
        assert result.report.count("circuit_skipped") == 1


class TestObservability:
    def test_trace_has_lifecycle_and_queued_stall(self, ref):
        jobs = [_job(ref, arrival=0.0), _job(ref, arrival=1e-9)]
        with pg.profile() as prof:
            service = SolverService(num_workers=1, coalesce=False)
            service.run(jobs)
        assert len(prof.trace.find("enqueue")) == 2
        assert len(prof.trace.find("scheduled")) == 2
        assert prof.trace.find("service_solve")
        queued = [
            s for s in prof.trace.find("queued") if s.category == "stall"
        ]
        assert queued  # the second job's wait shows as a queued stall

    def test_slo_report_shape(self, burst):
        service = SolverService(num_workers=2, coalesce=True, max_lane=8)
        service.run(burst)
        slo = service.slo_report()
        for key in (
            "p50_latency",
            "p99_latency",
            "throughput",
            "coalesce_ratio",
            "deadline_miss_rate",
            "makespan",
            "routes",
        ):
            assert key in slo
        assert slo["jobs_completed"] == len(burst)
        assert slo["p50_latency"] <= slo["p99_latency"]
        assert slo["throughput"] > 0
        assert slo["coalesce_ratio"] > 0

    def test_coalescing_beats_fifo_throughput(self, ref):
        def stream():
            return synthetic_workload(
                ref,
                num_jobs=16,
                num_patterns=2,
                small_n=24,
                mean_interarrival=1e-7,
                seed=9,
            )

        fast = SolverService(num_workers=2, coalesce=True, max_lane=8)
        fast.run(stream())
        slow = SolverService(num_workers=1, coalesce=False, policy="fifo")
        slow.run(stream())
        assert (
            fast.slo_report()["throughput"]
            > slow.slo_report()["throughput"]
        )
