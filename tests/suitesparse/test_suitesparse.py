"""Synthetic SuiteSparse collection tests."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.suitesparse import (
    TABLE2,
    banded,
    circuit_like,
    diagonal_mass,
    kronecker_graph,
    matrix_stats,
    mesh_delaunay,
    overhead_suite,
    poisson_2d,
    poisson_3d,
    random_general,
    solver_suite,
    spd_random,
    spmv_suite,
    table2_suite,
)


def _is_spd(matrix, samples: int = 3) -> bool:
    dense = matrix.toarray()
    if not np.allclose(dense, dense.T):
        return False
    return np.linalg.eigvalsh(dense).min() > 0


class TestGenerators:
    def test_poisson_2d_structure(self):
        mat = poisson_2d(8)
        assert mat.shape == (64, 64)
        assert _is_spd(mat)
        # Interior rows have 5-point stencils.
        assert matrix_stats(mat)["max_row_nnz"] == 5

    def test_poisson_3d_structure(self):
        mat = poisson_3d(4)
        assert mat.shape == (64, 64)
        assert matrix_stats(mat)["max_row_nnz"] == 7
        assert _is_spd(mat)

    def test_diagonal_mass_zero_rows(self):
        mat = diagonal_mass(100, zero_fraction=0.4, seed=1)
        assert mat.shape == (100, 100)
        assert mat.nnz == 60  # structurally removed zeros

    def test_diagonal_mass_deterministic(self):
        a = diagonal_mass(50, 0.2, seed=9)
        b = diagonal_mass(50, 0.2, seed=9)
        assert (abs(a - b)).max() == 0

    def test_mesh_delaunay_properties(self):
        mat = mesh_delaunay(200, seed=3)
        stats = matrix_stats(mat)
        assert stats["pattern_symmetric"]
        # Planar triangulations average ~6 neighbours + diagonal.
        assert 4 < stats["avg_row_nnz"] < 9
        assert stats["imbalance"] < 5

    def test_circuit_like_is_imbalanced(self):
        mat = circuit_like(2000, seed=4)
        assert matrix_stats(mat)["imbalance"] > 10

    def test_banded_density(self):
        mat = banded(100, bandwidth=5)
        assert matrix_stats(mat)["max_row_nnz"] == 11

    def test_random_general_density(self):
        mat = random_general(200, 0.05, seed=2, diag_dominant=False)
        assert matrix_stats(mat)["density"] == pytest.approx(0.05, rel=0.2)

    def test_spd_random_is_spd(self):
        assert _is_spd(spd_random(60, 0.1, seed=5))

    def test_kronecker_power_law(self):
        mat = kronecker_graph(8, edge_factor=8, seed=6)
        assert mat.shape == (256, 256)
        assert matrix_stats(mat)["imbalance"] > 3

    def test_generator_validation(self):
        with pytest.raises(ValueError):
            poisson_2d(0)
        with pytest.raises(ValueError):
            diagonal_mass(10, zero_fraction=1.0)
        with pytest.raises(ValueError):
            banded(10, bandwidth=10)
        with pytest.raises(ValueError):
            random_general(10, 0.0)
        with pytest.raises(ValueError):
            mesh_delaunay(2)
        with pytest.raises(ValueError):
            kronecker_graph(0)


class TestTable2:
    def test_six_labels(self):
        assert [s.label for s in TABLE2] == list("ABCDEF")

    def test_paper_names(self):
        names = {s.name for s in TABLE2}
        assert names == {
            "bcsstm37", "bcsstm39", "mult_dcop_01", "delaunay_n17",
            "av41092", "ASIC_320ks",
        }

    def test_scaled_dimensions_track_paper(self):
        paper_dims = {
            "A": 25503, "B": 46772, "C": 25187, "D": 131072,
            "E": 41092, "F": 321671,
        }
        for spec in table2_suite(scale=0.05):
            mat = spec.build()
            assert mat.shape[0] == pytest.approx(
                paper_dims[spec.label] * 0.05, rel=0.02
            )
            spec.clear()

    def test_bcsstm_has_fewer_nnz_than_rows(self):
        spec = table2_suite(scale=0.05)[0]  # bcsstm37
        mat = spec.build()
        assert mat.nnz < mat.shape[0]

    def test_nnz_ratio_tracks_paper(self):
        paper_nnz = {"C": 1.93e5, "D": 7.86e5, "E": 1.68e6}
        for spec in table2_suite(scale=0.05):
            if spec.label not in paper_nnz:
                continue
            mat = spec.build()
            assert mat.nnz == pytest.approx(
                paper_nnz[spec.label] * 0.05, rel=0.35
            )
            spec.clear()


class TestSuites:
    def test_suite_sizes_match_paper(self):
        assert len(spmv_suite()) == 30
        assert len(solver_suite()) == 40
        assert len(overhead_suite()) == 45

    def test_nnz_targets_log_spaced(self):
        suite = spmv_suite(count=6, min_nnz=1e4, max_nnz=1e5)
        sizes = [s.build().nnz for s in suite]
        for spec in suite:
            spec.clear()
        assert sizes == sorted(sizes)
        assert sizes[0] == pytest.approx(1e4, rel=0.8)
        assert sizes[-1] == pytest.approx(1e5, rel=0.8)

    def test_solver_suite_has_five_dense_matrices(self):
        dense = [s for s in solver_suite() if s.kind == "dense_random"]
        assert len(dense) == 5

    def test_builds_are_cached(self):
        spec = spmv_suite(count=1, min_nnz=1e4, max_nnz=1e4)[0]
        assert spec.build() is spec.build()
        spec.clear()
        assert spec._cache is None

    def test_all_square(self):
        for spec in spmv_suite(count=8, max_nnz=1e5):
            mat = spec.build()
            assert mat.shape[0] == mat.shape[1]
            spec.clear()

    def test_deterministic_across_calls(self):
        a = spmv_suite(count=3, max_nnz=1e5)[1].build()
        b = spmv_suite(count=3, max_nnz=1e5)[1].build()
        assert (abs(a - b)).max() == 0


class TestMatrixStats:
    def test_basic_fields(self, general_small):
        stats = matrix_stats(general_small)
        assert stats["rows"] == 50
        assert stats["nnz"] == general_small.nnz
        assert 0 < stats["density"] < 1

    def test_symmetry_detection(self):
        sym = sp.csr_matrix(np.array([[1.0, 2.0], [2.0, 3.0]]))
        asym = sp.csr_matrix(np.array([[1.0, 2.0], [0.0, 3.0]]))
        assert matrix_stats(sym)["pattern_symmetric"]
        assert not matrix_stats(asym)["pattern_symmetric"]

    def test_engine_matrix_accepted(self, ref, general_small):
        from repro.ginkgo.matrix import Csr

        stats = matrix_stats(Csr.from_scipy(ref, general_small))
        assert stats["nnz"] == general_small.nnz
